package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// gptPlannerCtx builds a GPT-3-scale planner: its search takes tens of
// milliseconds, long enough for a mid-flight cancellation to land inside it.
func gptPlannerCtx(t testing.TB, workers int) *Planner {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	pl, err := NewPlanner(model.GPT3_175B(), hardware.ClusterA(),
		parallel.Strategy{TP: 8, PP: 8, DP: 1},
		parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPlanContextAlreadyCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pl := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		p, err := pl.PlanContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got plan=%v err=%v", workers, p, err)
		}
		if pl.Stats.CostEvaluations != 0 {
			t.Fatalf("workers=%d: pre-cancelled search still evaluated %d costs", workers, pl.Stats.CostEvaluations)
		}
	}
}

// TestPlanContextCancelMidSearch cancels a GPT-3-scale search shortly after
// launch and requires a prompt context.Canceled return — not an OOM
// misdiagnosis, not a completed plan, and no pool goroutine left behind.
func TestPlanContextCancelMidSearch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		pl := gptPlannerCtx(t, workers)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		p, err := pl.PlanContext(ctx)
		elapsed := time.Since(start)
		if err == nil {
			// The search may legitimately win the race and finish first;
			// that is a valid (and complete) outcome.
			if p == nil {
				t.Fatalf("workers=%d: nil plan with nil error", workers)
			}
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		// "Promptly" means well under the full search wall (~30ms serial on
		// one core): the unwind must not re-run the whole DP.
		if err != nil && elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
		cancel()
		// The pool joins all workers before PlanContext returns, so any
		// goroutine growth is a leak. Allow the runtime a few scheduler
		// beats to retire exiting goroutines.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > before {
			t.Fatalf("workers=%d: goroutines %d -> %d after cancelled search", workers, before, now)
		}
	}
}

// TestPlanContextCancelKeepsCacheClean proves a cancelled search cannot
// poison the planner: after an interrupted PlanContext, a fresh Plan on the
// same planner must produce bytes identical to a planner that never saw a
// cancellation (the half-run prefill merges only completed solves).
func TestPlanContextCancelKeepsCacheClean(t *testing.T) {
	clean := tinyPlanner(t, 15, 8, 16, 0.15, PartitionAdaptive, 4)
	want, err := clean.Plan()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	dirty := tinyPlanner(t, 15, 8, 16, 0.15, PartitionAdaptive, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Microsecond)
		cancel()
	}()
	if _, err := dirty.PlanContext(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search: %v", err)
	}
	got, err := dirty.Plan()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("plan after cancelled search diverged:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
}

// TestPlanContextBackgroundMatchesPlan pins the wrapper equivalence: an
// uncancelled context must change nothing about the result.
func TestPlanContextBackgroundMatchesPlan(t *testing.T) {
	a := tinyPlanner(t, 6, 4, 8, 0.15, PartitionExact, 4)
	b := tinyPlanner(t, 6, 4, 8, 0.15, PartitionExact, 4)
	pa, err := a.Plan()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.PlanContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(pa)
	jb, _ := json.Marshal(pb)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("PlanContext(Background) != Plan:\n%s\n%s", ja, jb)
	}
}
