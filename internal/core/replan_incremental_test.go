package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"adapipe/internal/hardware"
)

func mustPlanJSON(t testing.TB, p *Plan) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal plan: %v", err)
	}
	return b
}

// scaleVectors is the seed matrix of straggler repricings the differential
// suite drives through the incremental replanner: identity, a single
// mid-pipeline bump, a front-stage straggler, every stage at once, an
// extreme 10x degradation, and a back-to-nominal reset.
func scaleVectors(p int) [][]float64 {
	single := ones(p)
	single[(p-1)/2] = 1.25
	front := ones(p)
	front[0] = 2
	all := make([]float64, p)
	for s := range all {
		all[s] = 1.1
	}
	extreme := ones(p)
	extreme[p-1] = 10
	return [][]float64{ones(p), single, front, all, extreme, ones(p)}
}

// TestReplanIncrementalMatrix is the seed-matrix differential suite of the
// incremental replanner: over models, stage counts, partition modes and
// workers ∈ {1, 2, 4, 8}, a warm planner replanned through a sequence of
// scale vectors must produce, at every step, a plan byte-identical
// (canonical Plan JSON) to a cold full search on a fresh planner under the
// same scale — while actually taking the fast path (ReplanIncremental
// advances) and never running more knapsacks than the cold search.
func TestReplanIncrementalMatrix(t *testing.T) {
	cases := []struct {
		decoders, pp, n int
		part            PartitionMode
	}{
		{6, 4, 8, PartitionAdaptive},
		{6, 4, 8, PartitionExact},
		{10, 6, 12, PartitionAdaptive},
		{3, 7, 8, PartitionAdaptive}, // L=8: one layer per stage almost everywhere
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("dec%d_pp%d_%s_w%d", tc.decoders, tc.pp, tc.part, workers), func(t *testing.T) {
				warm := tinyPlanner(t, tc.decoders, tc.pp, tc.n, 0.15, tc.part, workers)
				old, err := warm.Plan()
				if err != nil {
					t.Fatal(err)
				}
				for step, scale := range scaleVectors(tc.pp) {
					before := warm.Stats
					r, err := warm.ReplanWithScale(old, scale)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					after := warm.Stats
					if got := after.ReplanIncremental - before.ReplanIncremental; got != 1 {
						t.Fatalf("step %d: fast path not taken (ReplanIncremental advanced by %d)", step, got)
					}

					cold := tinyPlanner(t, tc.decoders, tc.pp, tc.n, 0.15, tc.part, workers)
					if err := cold.SetStageScale(scale); err != nil {
						t.Fatal(err)
					}
					coldPlan, err := cold.Plan()
					if err != nil {
						t.Fatalf("step %d cold: %v", step, err)
					}
					if got, want := mustPlanJSON(t, r.New), mustPlanJSON(t, coldPlan); !bytes.Equal(got, want) {
						t.Fatalf("step %d (scale %v): incremental plan differs from cold search:\n%s\nvs\n%s",
							step, scale, got, want)
					}
					if incr, coldRuns := after.KnapsackRuns-before.KnapsackRuns, cold.Stats.KnapsackRuns; incr > coldRuns {
						t.Fatalf("step %d: incremental replan ran %d knapsacks, cold search only %d", step, incr, coldRuns)
					}
					old = r.New
				}
				if warm.Stats.InvalidatedIsoClasses == 0 {
					t.Error("no iso classes were ever invalidated across the scale sequence")
				}
				if warm.Stats.WarmStartCells == 0 {
					t.Error("no DP cells were ever reused across the scale sequence")
				}
			})
		}
	}
}

// TestReplanIncrementalGPT3 pins the acceptance configuration: on the
// GPT-3 175B search space, straggler replans on a warm planner take the
// incremental path and stay byte-identical to cold full searches.
func TestReplanIncrementalGPT3(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	opts := DefaultOptions()
	opts.Workers = 8
	warm, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	old, err := warm.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for step, scale := range [][]float64{
		func() []float64 { s := ones(strat.PP); s[2] = 1.25; return s }(),
		func() []float64 { s := ones(strat.PP); s[2] = 1.3; return s }(),
	} {
		r, err := warm.ReplanWithScale(old, scale)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewPlanner(cfg, cl, strat, train, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := cold.SetStageScale(scale); err != nil {
			t.Fatal(err)
		}
		coldPlan, err := cold.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustPlanJSON(t, r.New), mustPlanJSON(t, coldPlan); !bytes.Equal(got, want) {
			t.Fatalf("step %d: incremental GPT-3 replan differs from cold search", step)
		}
		old = r.New
	}
	if warm.Stats.ReplanIncremental != 2 {
		t.Fatalf("ReplanIncremental = %d, want 2", warm.Stats.ReplanIncremental)
	}
	if warm.Stats.WarmStartCells == 0 {
		t.Error("GPT-3 replans reused no DP cells")
	}
}

// TestReplanWithShapeWarmStartByteIdentity threads the differential check
// through the elastic path: after a shape replan the adopted plan must be
// byte-identical to a cold full search for the adopted strategy on the new
// cluster — whether or not the winning candidate warm-started from the old
// planner's memo (it does when it keeps the old pipeline depth).
func TestReplanWithShapeWarmStartByteIdentity(t *testing.T) {
	pl := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, 4)
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
	cl := hardware.ClusterA()
	for _, nodes := range []int{cl.Nodes, cl.Nodes / 2} {
		resized, err := cl.Resize(nodes)
		if err != nil {
			t.Fatal(err)
		}
		r, err := pl.ReplanWithShape(resized)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewPlanner(pl.cfg, resized, r.Strategy, pl.train, pl.opts)
		if err != nil {
			t.Fatal(err)
		}
		coldPlan, err := cold.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustPlanJSON(t, r.Plan), mustPlanJSON(t, coldPlan); !bytes.Equal(got, want) {
			t.Fatalf("shape replan to %d nodes differs from cold search:\n%s\nvs\n%s", nodes, got, want)
		}
		if r.Strategy.PP == pl.strat.PP && r.Planner.Stats.ReplanIncremental == 0 {
			t.Errorf("unchanged-depth winner on %d nodes did not warm-start from the seeded memo", nodes)
		}
	}
}

// TestReplanConcurrentSharedPool races concurrent Plan and ReplanWithScale
// calls on one planner against the shared solver pool and the memo
// check-out: every produced plan must be well-formed, and replans must stay
// byte-identical to what a cold planner computes for the same scale. Run
// under -race by the Makefile's filtered race target.
func TestReplanConcurrentSharedPool(t *testing.T) {
	pl := tinyPlanner(t, 6, 4, 12, 0.15, PartitionAdaptive, 4)
	old, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	scale := ones(4)
	scale[1] = 1.5

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	news := make(chan *Plan, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		if g%2 == 0 {
			go func() {
				defer wg.Done()
				if _, err := pl.Plan(); err != nil {
					errs <- err
				}
			}()
		} else {
			go func() {
				defer wg.Done()
				r, err := pl.ReplanWithScale(old, scale)
				if err != nil {
					errs <- err
					return
				}
				news <- r.New
			}()
		}
	}
	wg.Wait()
	close(errs)
	close(news)
	for err := range errs {
		t.Fatal(err)
	}

	cold := tinyPlanner(t, 6, 4, 12, 0.15, PartitionAdaptive, 4)
	if err := cold.SetStageScale(scale); err != nil {
		t.Fatal(err)
	}
	coldPlan, err := cold.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := mustPlanJSON(t, coldPlan)
	for p := range news {
		if !bytes.Equal(mustPlanJSON(t, p), want) {
			t.Fatal("concurrent replan differs from cold search")
		}
	}
	pl.mu.Lock()
	pooled := len(pl.solverPool)
	pl.mu.Unlock()
	if pooled == 0 {
		t.Error("no prefill solvers were parked back on the pool")
	}
}

// TestReplanAllocsBounded pins the allocation cost of the warm replanning
// fast path: with the memo, dense cost snapshot and knapsack solvers all
// pooled on the planner, an incremental replan must stay orders of magnitude
// below the cold search's ~20k allocations (the parallel-path regression the
// pooling work killed). The two scales alternate so every run recomputes
// levels, not just reassembles.
func TestReplanAllocsBounded(t *testing.T) {
	warm := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, 8)
	plan, err := warm.Plan()
	if err != nil {
		t.Fatal(err)
	}
	scales := [2][]float64{
		{1, 1.25, 1, 1},
		{1, 1.35, 1, 1},
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		r, err := warm.ReplanWithScale(plan, scales[i%2])
		if err != nil {
			t.Fatal(err)
		}
		plan = r.New
		i++
	})
	t.Logf("incremental replan: %.0f allocs/op", allocs)
	const bound = 1024 // measured ~410/op; cold search runs ~20k
	if allocs > bound {
		t.Fatalf("incremental replan allocates %.0f/op, bound %d", allocs, bound)
	}
}
