package fault

import "testing"

func TestNewMembershipValidation(t *testing.T) {
	cases := []struct {
		name                             string
		stages, nodesPerStage, threshold int
		ok                               bool
	}{
		{"ok", 3, 1, 2, true},
		{"multi-node", 4, 2, 3, true},
		{"zero-stages", 0, 1, 2, false},
		{"zero-nodes", 3, 0, 2, false},
		{"zero-threshold", 3, 1, 0, false},
		{"negative-threshold", 3, 1, -1, false},
	}
	for _, tc := range cases {
		_, err := NewMembership(tc.stages, tc.nodesPerStage, tc.threshold)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// TestMembershipThreshold: a stage must fail threshold times *consecutively*
// to lose its node; a success in between clears the streak, and failures on
// another stage clear it too (the synchronous pipeline fails as a whole, so
// blame must be repeated to stick).
func TestMembershipThreshold(t *testing.T) {
	m, err := NewMembership(3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Two failures, then a healthy step: no loss.
	for i := 0; i < 2; i++ {
		if lost, down := m.ObserveFailure(1); lost || down {
			t.Fatalf("failure %d already classified permanent", i)
		}
	}
	m.ObserveSuccess()
	for i := 0; i < 2; i++ {
		if lost, down := m.ObserveFailure(1); lost || down {
			t.Fatal("streak survived a success")
		}
	}

	// A failure on another stage resets stage 1's streak.
	if lost, _ := m.ObserveFailure(0); lost {
		t.Fatal("stage 0's first failure classified permanent")
	}
	for i := 0; i < 2; i++ {
		if lost, _ := m.ObserveFailure(1); lost {
			t.Fatal("streak survived another stage's failure")
		}
	}
	lost, down := m.ObserveFailure(1)
	if !lost || !down {
		t.Fatalf("third consecutive failure: lost=%v down=%v, want both (single-node stage)", lost, down)
	}
	if m.Nodes(1) != 0 {
		t.Fatalf("stage 1 still has %d nodes after the loss", m.Nodes(1))
	}
	if m.LostNodes() != 1 {
		t.Fatalf("lost nodes = %d, want 1", m.LostNodes())
	}
}

// TestMembershipLastNodeOfStage: with multi-node backing, losing one node
// reports lost but not down; only the last remaining node's loss downs the
// stage. Once down, further failures keep reporting down without going
// negative.
func TestMembershipLastNodeOfStage(t *testing.T) {
	m, err := NewMembership(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	m.ObserveFailure(0)
	lost, down := m.ObserveFailure(0)
	if !lost || down {
		t.Fatalf("first node loss: lost=%v down=%v, want lost only (one node remains)", lost, down)
	}
	if m.Nodes(0) != 1 {
		t.Fatalf("stage 0 has %d nodes, want 1", m.Nodes(0))
	}

	m.ObserveFailure(0)
	lost, down = m.ObserveFailure(0)
	if !lost || !down {
		t.Fatalf("last node loss: lost=%v down=%v, want both", lost, down)
	}

	// The stage is gone; the model keeps saying so instead of underflowing.
	lost, down = m.ObserveFailure(0)
	if lost || !down {
		t.Fatalf("post-down failure: lost=%v down=%v, want down only", lost, down)
	}
	if m.Nodes(0) != 0 {
		t.Fatalf("stage 0 node count went to %d", m.Nodes(0))
	}
	if m.LostNodes() != 2 {
		t.Fatalf("lost nodes = %d, want 2", m.LostNodes())
	}
}

// TestMembershipResize: resizing installs the new shape with fresh backing
// and clean streaks while preserving the lifetime loss count; out-of-range
// observations after the shrink are ignored.
func TestMembershipResize(t *testing.T) {
	m, err := NewMembership(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveFailure(1)
	if lost, down := m.ObserveFailure(1); !lost || !down {
		t.Fatal("stage 1 did not go down")
	}

	if err := m.Resize(2); err != nil {
		t.Fatal(err)
	}
	if m.Stages() != 2 {
		t.Fatalf("stages = %d, want 2", m.Stages())
	}
	for s := 0; s < 2; s++ {
		if m.Nodes(s) != 1 {
			t.Fatalf("stage %d has %d nodes after resize, want 1", s, m.Nodes(s))
		}
	}
	if m.LostNodes() != 1 {
		t.Fatalf("lifetime lost nodes = %d after resize, want 1", m.LostNodes())
	}

	// Old stage index 2 no longer exists; observing it is a no-op.
	if lost, down := m.ObserveFailure(2); lost || down {
		t.Fatal("out-of-range stage classified")
	}
	// Streaks restart on the new shape.
	if lost, _ := m.ObserveFailure(0); lost {
		t.Fatal("streak carried across resize")
	}

	if err := m.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
}
