package fault

import (
	"math"
	"testing"
	"time"
)

func TestRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		ok   bool
	}{
		{"panic-any", On(Panic), true},
		{"straggler", On(Straggler).WithDelay(time.Millisecond), true},
		{"corrupt-prob", On(Corrupt).WithProb(0.25), true},
		{"straggler-no-delay", On(Straggler), false},
		{"bad-prob", On(Panic).WithProb(1.5), false},
		{"nan-prob", On(Panic).WithProb(math.NaN()), false},
		{"bad-stage", On(Panic).AtStage(-2), false},
		{"bad-kind", Rule{Kind: kindCount, Stage: Any, Micro: Any, Attempt: Any, Prob: 1}, false},
		{"negative-delay", On(Straggler).WithDelay(-time.Second), false},
	}
	for _, tc := range cases {
		_, err := New(1, tc.rule)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestPanicFiltersAndPayload(t *testing.T) {
	inj := MustNew(7, On(Panic).AtStage(2).AtMicro(3).AtAttempt(1).OnPhase(PhaseBackward))

	// Non-matching ops pass through untouched.
	inj.OpStart(1, 2, 3, false, nil) // wrong phase
	inj.OpStart(1, 1, 3, true, nil)  // wrong stage
	inj.OpStart(1, 2, 0, true, nil)  // wrong micro
	inj.OpStart(0, 2, 3, true, nil)  // wrong attempt
	if _, p, _ := inj.InjectedCounts(); p != 0 {
		t.Fatalf("panics fired on non-matching ops: %d", p)
	}

	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("panic payload = %v (%T), want InjectedPanic", r, r)
		}
		if ip.Stage != 2 || ip.Micro != 3 || ip.Attempt != 1 {
			t.Fatalf("payload = %+v", ip)
		}
		if _, p, _ := inj.InjectedCounts(); p != 1 {
			t.Fatalf("panic count = %d, want 1", p)
		}
	}()
	inj.OpStart(1, 2, 3, true, nil)
}

func TestProbDecisionsDeterministic(t *testing.T) {
	counts := func(seed uint64) (fired int, pattern []bool) {
		inj := MustNew(seed, On(Corrupt).WithProb(0.5))
		for micro := 0; micro < 64; micro++ {
			data := []float64{1}
			inj.Corrupt(0, 0, micro, false, data)
			hit := math.IsNaN(data[0]) || math.IsInf(data[0], 0)
			pattern = append(pattern, hit)
			if hit {
				fired++
			}
		}
		return fired, pattern
	}

	fired1, pat1 := counts(42)
	fired2, pat2 := counts(42)
	if fired1 != fired2 {
		t.Fatalf("same seed fired %d vs %d", fired1, fired2)
	}
	for i := range pat1 {
		if pat1[i] != pat2[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	if fired1 == 0 || fired1 == 64 {
		t.Fatalf("prob 0.5 over 64 ops fired %d times; hash looks degenerate", fired1)
	}

	fired3, pat3 := counts(43)
	same := true
	for i := range pat1 {
		if pat1[i] != pat3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical firing patterns (%d fired)", fired3)
	}
}

func TestCorruptWritesNonFinite(t *testing.T) {
	inj := MustNew(3, On(Corrupt).AtStage(1).OnPhase(PhaseForward))
	data := make([]float64, 16)
	inj.Corrupt(0, 1, 0, false, data)

	bad := 0
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("corrupted %d elements, want exactly 1", bad)
	}
	if _, _, c := inj.InjectedCounts(); c != 1 {
		t.Fatalf("corruption count = %d, want 1", c)
	}

	// Backward ops are out of the rule's phase.
	clean := make([]float64, 16)
	inj.Corrupt(0, 1, 0, true, clean)
	for i, v := range clean {
		if v != 0 {
			t.Fatalf("backward op corrupted element %d", i)
		}
	}

	// Empty tensors are a no-op, not a crash.
	inj.Corrupt(0, 1, 1, false, nil)
}

func TestStragglerSleepIsCancellable(t *testing.T) {
	inj := MustNew(1, On(Straggler).WithDelay(time.Minute))
	cancel := make(chan struct{})
	close(cancel)

	start := time.Now()
	inj.OpStart(0, 0, 0, false, cancel)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled straggler sleep still took %s", d)
	}
	if s, _, _ := inj.InjectedCounts(); s != 1 {
		t.Fatalf("straggler count = %d, want 1", s)
	}
}

func TestAttemptTargetingIsTransient(t *testing.T) {
	inj := MustNew(9, On(Panic).AtAttempt(0))

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("attempt 0 did not panic")
			}
		}()
		inj.OpStart(0, 0, 0, false, nil)
	}()

	// The retry runs under attempt 1 and must be clean.
	inj.OpStart(1, 0, 0, false, nil)
	if _, p, _ := inj.InjectedCounts(); p != 1 {
		t.Fatalf("panic count = %d, want 1", p)
	}
}
