package fault

import (
	"math"
	"testing"
	"time"
)

func TestRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		ok   bool
	}{
		{"panic-any", On(Panic), true},
		{"straggler", On(Straggler).WithDelay(time.Millisecond), true},
		{"corrupt-prob", On(Corrupt).WithProb(0.25), true},
		{"straggler-no-delay", On(Straggler), false},
		{"bad-prob", On(Panic).WithProb(1.5), false},
		{"nan-prob", On(Panic).WithProb(math.NaN()), false},
		{"bad-stage", On(Panic).AtStage(-2), false},
		{"bad-kind", Rule{Kind: kindCount, Stage: Any, Micro: Any, Attempt: Any, Prob: 1}, false},
		{"negative-delay", On(Straggler).WithDelay(-time.Second), false},
		{"nodeloss", On(NodeLoss).AtStage(1), true},
		{"nodeloss-from-attempt", On(NodeLoss).AtStage(0).AtAttempt(3), true},
		{"nodeloss-no-stage", On(NodeLoss), false},
		{"nodeloss-with-delay", On(NodeLoss).AtStage(1).WithDelay(time.Second), false},
		{"nodeloss-with-micro", On(NodeLoss).AtStage(1).AtMicro(2), false},
		{"nodeloss-with-phase", On(NodeLoss).AtStage(1).OnPhase(PhaseBackward), false},
		{"scaleup", On(ScaleUp).AtAttempt(4), true},
		{"scaleup-no-attempt", On(ScaleUp), false},
		{"scaleup-with-stage", On(ScaleUp).AtAttempt(4).AtStage(1), false},
		{"scaleup-with-delay", On(ScaleUp).AtAttempt(4).WithDelay(time.Second), false},
	}
	for _, tc := range cases {
		_, err := New(1, tc.rule)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestPanicFiltersAndPayload(t *testing.T) {
	inj := MustNew(7, On(Panic).AtStage(2).AtMicro(3).AtAttempt(1).OnPhase(PhaseBackward))

	// Non-matching ops pass through untouched.
	inj.OpStart(1, 2, 3, false, nil) // wrong phase
	inj.OpStart(1, 1, 3, true, nil)  // wrong stage
	inj.OpStart(1, 2, 0, true, nil)  // wrong micro
	inj.OpStart(0, 2, 3, true, nil)  // wrong attempt
	if _, p, _, _ := inj.InjectedCounts(); p != 0 {
		t.Fatalf("panics fired on non-matching ops: %d", p)
	}

	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("panic payload = %v (%T), want InjectedPanic", r, r)
		}
		if ip.Stage != 2 || ip.Micro != 3 || ip.Attempt != 1 {
			t.Fatalf("payload = %+v", ip)
		}
		if _, p, _, _ := inj.InjectedCounts(); p != 1 {
			t.Fatalf("panic count = %d, want 1", p)
		}
	}()
	inj.OpStart(1, 2, 3, true, nil)
}

func TestProbDecisionsDeterministic(t *testing.T) {
	counts := func(seed uint64) (fired int, pattern []bool) {
		inj := MustNew(seed, On(Corrupt).WithProb(0.5))
		for micro := 0; micro < 64; micro++ {
			data := []float64{1}
			inj.Corrupt(0, 0, micro, false, data)
			hit := math.IsNaN(data[0]) || math.IsInf(data[0], 0)
			pattern = append(pattern, hit)
			if hit {
				fired++
			}
		}
		return fired, pattern
	}

	fired1, pat1 := counts(42)
	fired2, pat2 := counts(42)
	if fired1 != fired2 {
		t.Fatalf("same seed fired %d vs %d", fired1, fired2)
	}
	for i := range pat1 {
		if pat1[i] != pat2[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	if fired1 == 0 || fired1 == 64 {
		t.Fatalf("prob 0.5 over 64 ops fired %d times; hash looks degenerate", fired1)
	}

	fired3, pat3 := counts(43)
	same := true
	for i := range pat1 {
		if pat1[i] != pat3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical firing patterns (%d fired)", fired3)
	}
}

func TestCorruptWritesNonFinite(t *testing.T) {
	inj := MustNew(3, On(Corrupt).AtStage(1).OnPhase(PhaseForward))
	data := make([]float64, 16)
	inj.Corrupt(0, 1, 0, false, data)

	bad := 0
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("corrupted %d elements, want exactly 1", bad)
	}
	if _, _, c, _ := inj.InjectedCounts(); c != 1 {
		t.Fatalf("corruption count = %d, want 1", c)
	}

	// Backward ops are out of the rule's phase.
	clean := make([]float64, 16)
	inj.Corrupt(0, 1, 0, true, clean)
	for i, v := range clean {
		if v != 0 {
			t.Fatalf("backward op corrupted element %d", i)
		}
	}

	// Empty tensors are a no-op, not a crash.
	inj.Corrupt(0, 1, 1, false, nil)
}

func TestStragglerSleepIsCancellable(t *testing.T) {
	inj := MustNew(1, On(Straggler).WithDelay(time.Minute))
	cancel := make(chan struct{})
	close(cancel)

	start := time.Now()
	inj.OpStart(0, 0, 0, false, cancel)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled straggler sleep still took %s", d)
	}
	if s, _, _, _ := inj.InjectedCounts(); s != 1 {
		t.Fatalf("straggler count = %d, want 1", s)
	}
}

func TestAttemptTargetingIsTransient(t *testing.T) {
	inj := MustNew(9, On(Panic).AtAttempt(0))

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("attempt 0 did not panic")
			}
		}()
		inj.OpStart(0, 0, 0, false, nil)
	}()

	// The retry runs under attempt 1 and must be clean.
	inj.OpStart(1, 0, 0, false, nil)
	if _, p, _, _ := inj.InjectedCounts(); p != 1 {
		t.Fatalf("panic count = %d, want 1", p)
	}
}

// TestKindNamesCoverAllKinds pins the kind count: adding a kind without a
// String name (and without revisiting validation) fails here.
func TestKindNamesCoverAllKinds(t *testing.T) {
	want := map[Kind]string{
		Straggler: "straggler",
		Panic:     "panic",
		Corrupt:   "corrupt",
		NodeLoss:  "nodeloss",
		ScaleUp:   "scaleup",
	}
	if int(kindCount) != len(want) {
		t.Fatalf("kindCount = %d, but %d kinds are named; update String, Validate and this test together", kindCount, len(want))
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), k.String(), name)
		}
	}
}

// TestNodeLossIsPermanent: unlike an attempt-targeted Panic, a NodeLoss rule
// fires on its stage for every attempt from its Attempt onward — retrying
// cannot outrun a dead node — and stays silent on other stages.
func TestNodeLossIsPermanent(t *testing.T) {
	inj := MustNew(5, On(NodeLoss).AtStage(1).AtAttempt(2))

	// Before the loss and on other stages: clean.
	inj.OpStart(0, 1, 0, false, nil)
	inj.OpStart(1, 1, 3, true, nil)
	inj.OpStart(4, 0, 0, false, nil)
	inj.OpStart(4, 2, 0, true, nil)
	if _, _, _, nl := inj.InjectedCounts(); nl != 0 {
		t.Fatalf("node loss fired early or off-stage: %d", nl)
	}

	for _, attempt := range []int{2, 3, 7} {
		func() {
			defer func() {
				r := recover()
				ip, ok := r.(InjectedNodeLoss)
				if !ok {
					t.Fatalf("attempt %d: payload = %v (%T), want InjectedNodeLoss", attempt, r, r)
				}
				if ip.Stage != 1 || ip.Attempt != attempt {
					t.Fatalf("payload = %+v", ip)
				}
			}()
			inj.OpStart(attempt, 1, 0, false, nil)
		}()
	}
	if _, _, _, nl := inj.InjectedCounts(); nl != 3 {
		t.Fatalf("node-loss count = %d, want 3", nl)
	}
}

// TestNodeLossProbabilisticIsConsistent: a probabilistic NodeLoss decides
// once per (rule, stage) — whichever way the draw goes, it goes the same way
// on every attempt, micro and phase. A node cannot be dead on attempt 3 and
// alive on attempt 4.
func TestNodeLossProbabilisticIsConsistent(t *testing.T) {
	verdict := func(seed uint64, attempt int, backward bool) (dead bool) {
		inj := MustNew(seed, On(NodeLoss).AtStage(0).WithProb(0.5))
		defer func() {
			if recover() != nil {
				dead = true
			}
		}()
		inj.OpStart(attempt, 0, attempt%3, backward, nil)
		return false
	}
	deadSeeds, aliveSeeds := 0, 0
	for seed := uint64(0); seed < 32; seed++ {
		first := verdict(seed, 0, false)
		if first {
			deadSeeds++
		} else {
			aliveSeeds++
		}
		for attempt := 1; attempt < 6; attempt++ {
			if verdict(seed, attempt, attempt%2 == 0) != first {
				t.Fatalf("seed %d: node flickered between attempts", seed)
			}
		}
	}
	if deadSeeds == 0 || aliveSeeds == 0 {
		t.Fatalf("prob 0.5 over 32 seeds: %d dead, %d alive; hash looks degenerate", deadSeeds, aliveSeeds)
	}
}

// TestScaleUpArrivals: ScaleUp rules are events, not op faults — OpStart
// ignores them entirely, and ArrivedNodes counts each rule from its Attempt
// onward.
func TestScaleUpArrivals(t *testing.T) {
	inj := MustNew(3, On(ScaleUp).AtAttempt(2), On(ScaleUp).AtAttempt(5))

	// Never an op fault: no panic, no delay, no counter.
	inj.OpStart(2, 0, 0, false, nil)
	inj.OpStart(5, 1, 0, true, nil)
	if s, p, c, nl := inj.InjectedCounts(); s+p+c+nl != 0 {
		t.Fatalf("scale-up perturbed ops: %d %d %d %d", s, p, c, nl)
	}

	for attempt, want := range map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 1, 5: 2, 9: 2} {
		if got := inj.ArrivedNodes(attempt); got != want {
			t.Errorf("ArrivedNodes(%d) = %d, want %d", attempt, got, want)
		}
	}

	// A zero-probability arrival never shows up; repeated polls agree.
	ghost := MustNew(3, On(ScaleUp).AtAttempt(0).WithProb(0))
	if got := ghost.ArrivedNodes(10); got != 0 {
		t.Fatalf("zero-prob arrival counted: %d", got)
	}
	prob := MustNew(3, On(ScaleUp).AtAttempt(0).WithProb(0.5))
	first := prob.ArrivedNodes(10)
	for i := 0; i < 5; i++ {
		if prob.ArrivedNodes(10) != first {
			t.Fatal("probabilistic arrival flickered between polls")
		}
	}
}
