// Package fault is a deterministic, seeded fault-injection layer for the live
// 1F1B pipeline engine. An Injector is consulted by the executor around every
// scheduled op and can delay it (a straggler device), panic mid-op (a
// transient stage failure), overwrite the op's output boundary tensor with
// NaN/Inf (activation corruption), or kill a stage permanently (node loss) —
// the failure modes a production pipeline must survive and the paper's
// fault-free model ignores. ScaleUp rules model the opposite event, a node
// arriving mid-run; the Membership model classifies repeated stage failures
// as permanent so the engine knows when retrying is futile and resizing is
// the only way forward.
//
// Every decision is a pure function of (seed, rule, attempt, stage, micro,
// phase) via counter-based hashing, so injections are reproducible regardless
// of goroutine scheduling: the same seed and rule set fires the same faults
// on every run, which is what makes chaos tests assertable. The package is
// dependency-free (stdlib only) and knows nothing about the engine; the
// engine talks to it through a small structural interface.
package fault

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Any matches every stage, micro-batch or attempt in a Rule filter.
const Any = -1

// Kind is a fault class.
type Kind uint8

const (
	// Straggler delays the op by the rule's Delay, modeling a persistently
	// or intermittently slow device. Delays are cancellable: a canceled
	// pipeline does not sit out the remaining sleep.
	Straggler Kind = iota
	// Panic panics mid-op, modeling a transient stage failure (the stage
	// goroutine dies and the iteration must be canceled and retried).
	Panic
	// Corrupt overwrites one element of the op's output boundary tensor
	// with NaN or ±Inf, modeling numeric blow-up. The non-finite value
	// propagates into the loss and gradients, where the engine's guard
	// catches it.
	Corrupt
	// NodeLoss kills every op of one stage from the rule's Attempt onward
	// (Any fires from the start), modeling a permanently dead node: unlike a
	// transient Panic, retrying the step does not help — the stage fails on
	// every attempt until the engine removes the node and resizes. The rule
	// needs a concrete Stage (a node hosts one stage) and takes no Delay;
	// probabilistic rules decide once per (rule, stage) so a firing loss is
	// consistently permanent rather than flickering across attempts.
	NodeLoss
	// ScaleUp is a node-arrival event, not an op fault: it never delays,
	// panics or corrupts anything. The rule's exact Attempt is the arrival
	// time; the engine polls ArrivedNodes to learn how many extra nodes are
	// available and grows the cluster shape.
	ScaleUp
	kindCount
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Straggler:
		return "straggler"
	case Panic:
		return "panic"
	case Corrupt:
		return "corrupt"
	case NodeLoss:
		return "nodeloss"
	case ScaleUp:
		return "scaleup"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Phase selects which executor ops a rule applies to.
type Phase uint8

const (
	// PhaseAny matches forward and backward ops.
	PhaseAny Phase = iota
	// PhaseForward matches forward ops only.
	PhaseForward
	// PhaseBackward matches backward ops only.
	PhaseBackward
)

// Rule is one fault source: a kind plus filters narrowing where and when it
// fires. Filters left at Any match everything of that dimension; Prob is the
// per-matching-op firing probability (1 fires on every match). Build rules
// with On and the chainable At*/With* setters so no filter is accidentally
// left at a zero value targeting stage/micro/attempt 0.
type Rule struct {
	// Kind is the fault class.
	Kind Kind
	// Stage targets one pipeline stage, or Any.
	Stage int
	// Micro targets one micro-batch index, or Any.
	Micro int
	// Attempt targets one Accumulate attempt (iteration attempts count
	// retries), or Any. Targeting an exact attempt makes a fault transient:
	// the retry of the same step runs under a later attempt number and the
	// rule no longer matches. Two kinds read the field differently: a
	// NodeLoss rule fires from Attempt onward (the node stays dead), and a
	// ScaleUp rule's Attempt is the arrival time from which the node counts
	// in ArrivedNodes.
	Attempt int
	// Phase restricts the rule to forward or backward ops.
	Phase Phase
	// Prob is the firing probability per matching op, in [0, 1].
	Prob float64
	// Delay is the straggler sleep; ignored by other kinds.
	Delay time.Duration
}

// On returns a Rule of the given kind matching every op with probability 1;
// narrow it with the chainable setters.
func On(kind Kind) Rule {
	return Rule{Kind: kind, Stage: Any, Micro: Any, Attempt: Any, Phase: PhaseAny, Prob: 1}
}

// AtStage restricts the rule to one pipeline stage.
func (r Rule) AtStage(s int) Rule { r.Stage = s; return r }

// AtMicro restricts the rule to one micro-batch index.
func (r Rule) AtMicro(m int) Rule { r.Micro = m; return r }

// AtAttempt restricts the rule to one iteration attempt.
func (r Rule) AtAttempt(a int) Rule { r.Attempt = a; return r }

// OnPhase restricts the rule to forward or backward ops.
func (r Rule) OnPhase(p Phase) Rule { r.Phase = p; return r }

// WithProb sets the per-op firing probability.
func (r Rule) WithProb(p float64) Rule { r.Prob = p; return r }

// WithDelay sets the straggler sleep.
func (r Rule) WithDelay(d time.Duration) Rule { r.Delay = d; return r }

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	switch {
	case r.Kind >= kindCount:
		return fmt.Errorf("fault: unknown kind %d", uint8(r.Kind))
	case r.Stage < Any || r.Micro < Any || r.Attempt < Any:
		return fmt.Errorf("fault: stage/micro/attempt filters must be >= Any (-1): %+v", r)
	case r.Phase > PhaseBackward:
		return fmt.Errorf("fault: unknown phase %d", uint8(r.Phase))
	case r.Prob < 0 || r.Prob > 1 || math.IsNaN(r.Prob):
		return fmt.Errorf("fault: probability %g outside [0, 1]", r.Prob)
	case r.Delay < 0:
		return fmt.Errorf("fault: negative delay %s", r.Delay)
	case r.Kind == Straggler && r.Delay == 0:
		return fmt.Errorf("fault: straggler rule needs a positive Delay")
	case r.Kind == NodeLoss:
		switch {
		case r.Stage == Any:
			return fmt.Errorf("fault: node-loss rule needs a concrete Stage (a node hosts one stage)")
		case r.Delay != 0:
			return fmt.Errorf("fault: node-loss rule takes no Delay (got %s)", r.Delay)
		case r.Micro != Any || r.Phase != PhaseAny:
			return fmt.Errorf("fault: node-loss kills every op of the stage; Micro/Phase filters are invalid: %+v", r)
		}
	case r.Kind == ScaleUp:
		switch {
		case r.Attempt == Any:
			return fmt.Errorf("fault: scale-up rule needs an exact Attempt (the arrival time)")
		case r.Delay != 0:
			return fmt.Errorf("fault: scale-up rule takes no Delay (got %s)", r.Delay)
		case r.Stage != Any || r.Micro != Any || r.Phase != PhaseAny:
			return fmt.Errorf("fault: scale-up is a cluster event; Stage/Micro/Phase filters are invalid: %+v", r)
		}
	}
	return nil
}

// InjectedPanic is the value an injected Panic fault panics with, so the
// engine's recover path (and tests) can tell injected failures from real
// executor bugs.
type InjectedPanic struct {
	// Stage, Micro and Attempt identify the op the fault killed.
	Stage, Micro, Attempt int
}

// String renders the panic payload.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic (stage %d, micro %d, attempt %d)", p.Stage, p.Micro, p.Attempt)
}

// InjectedNodeLoss is the value an injected NodeLoss fault panics with. The
// engine's recover path uses the distinct type to tell a permanently dead
// node from a transient InjectedPanic.
type InjectedNodeLoss struct {
	// Stage, Micro and Attempt identify the op the dead node killed.
	Stage, Micro, Attempt int
}

// String renders the node-loss payload.
func (p InjectedNodeLoss) String() string {
	return fmt.Sprintf("fault: injected node loss (stage %d, micro %d, attempt %d)", p.Stage, p.Micro, p.Attempt)
}

// Injector evaluates a rule set deterministically. It is safe for concurrent
// use by every stage goroutine: decisions are pure hashes and the counters
// are atomic.
type Injector struct {
	seed  uint64
	rules []Rule

	stragglers  atomic.Int64
	panics      atomic.Int64
	corruptions atomic.Int64
	nodeLosses  atomic.Int64
}

// New validates the rules and returns an injector keyed by seed.
func New(seed uint64, rules ...Rule) (*Injector, error) {
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("fault: rule %d: %w", i, err)
		}
	}
	return &Injector{seed: seed, rules: append([]Rule(nil), rules...)}, nil
}

// MustNew is New panicking on invalid rules, for tests and examples.
func MustNew(seed uint64, rules ...Rule) *Injector {
	inj, err := New(seed, rules...)
	if err != nil {
		panic(err)
	}
	return inj
}

// OpStart runs the pre-op fault kinds for one scheduled op: matching
// Straggler rules sleep (in rule order, cancellably), then a matching Panic
// rule panics with an InjectedPanic payload. The executor calls it right
// before the op's compute, inside the recorder's compute bracket, so
// straggler delay shows up as compute slowdown — exactly how a slow device
// would look to the straggler detector.
func (in *Injector) OpStart(attempt, stage, micro int, backward bool, cancel <-chan struct{}) {
	phase := PhaseForward
	if backward {
		phase = PhaseBackward
	}
	// Dead nodes kill the op before anything else runs: a stage on a lost
	// node neither computes slowly nor corrupts — it is simply gone.
	for ri, r := range in.rules {
		if r.Kind != NodeLoss || !in.nodeDown(ri, r, attempt, stage) {
			continue
		}
		in.nodeLosses.Add(1)
		panic(InjectedNodeLoss{Stage: stage, Micro: micro, Attempt: attempt})
	}
	for ri, r := range in.rules {
		if r.Kind != Straggler || !in.fires(ri, r, attempt, stage, micro, phase) {
			continue
		}
		in.stragglers.Add(1)
		sleep(r.Delay, cancel)
	}
	for ri, r := range in.rules {
		if r.Kind != Panic || !in.fires(ri, r, attempt, stage, micro, phase) {
			continue
		}
		in.panics.Add(1)
		panic(InjectedPanic{Stage: stage, Micro: micro, Attempt: attempt})
	}
}

// Corrupt applies matching Corrupt rules to the op's output boundary tensor
// in place: each firing rule overwrites one deterministically-chosen element
// with NaN or ±Inf. The executor calls it on the tensor an op is about to
// hand to its neighbor (forward activation or backward boundary gradient).
func (in *Injector) Corrupt(attempt, stage, micro int, backward bool, data []float64) {
	if len(data) == 0 {
		return
	}
	phase := PhaseForward
	if backward {
		phase = PhaseBackward
	}
	for ri, r := range in.rules {
		if r.Kind != Corrupt || !in.fires(ri, r, attempt, stage, micro, phase) {
			continue
		}
		in.corruptions.Add(1)
		h := in.hash(ri, attempt, stage, micro, phase, 0xc0)
		v := math.NaN()
		switch h >> 61 & 3 {
		case 1:
			v = math.Inf(1)
		case 2:
			v = math.Inf(-1)
		}
		data[h%uint64(len(data))] = v
	}
}

// InjectedCounts returns how many faults of each kind have fired so far.
func (in *Injector) InjectedCounts() (stragglers, panics, corruptions, nodeLosses int64) {
	return in.stragglers.Load(), in.panics.Load(), in.corruptions.Load(), in.nodeLosses.Load()
}

// ArrivedNodes reports how many ScaleUp rules have come due by the given
// attempt: a rule counts once its Attempt is <= attempt (the node is
// available from that attempt onward) and its probability draw — decided
// once per rule, like a node either showing up or not — fires. The engine
// polls it after each completed step to grow the cluster shape.
func (in *Injector) ArrivedNodes(attempt int) int {
	arrived := 0
	for ri, r := range in.rules {
		if r.Kind != ScaleUp || r.Attempt > attempt {
			continue
		}
		if r.Prob < 1 {
			if r.Prob <= 0 {
				continue
			}
			h := in.hash(ri, 0, 0, 0, PhaseAny, 0x5c)
			if float64(h>>11)*0x1p-53 >= r.Prob {
				continue
			}
		}
		arrived++
	}
	return arrived
}

// nodeDown decides whether NodeLoss rule ri has the identified stage's node
// dead at the given attempt. The probability draw excludes the attempt (and
// micro/phase): a node is either permanently lost from the rule's Attempt
// onward or never lost — it cannot flicker back between retries.
func (in *Injector) nodeDown(ri int, r Rule, attempt, stage int) bool {
	if r.Stage != stage || (r.Attempt != Any && attempt < r.Attempt) {
		return false
	}
	switch {
	case r.Prob >= 1:
		return true
	case r.Prob <= 0:
		return false
	}
	h := in.hash(ri, 0, stage, 0, PhaseAny, 0xd0)
	return float64(h>>11)*0x1p-53 < r.Prob
}

// fires decides whether rule ri fires on the identified op — a pure function
// of the injector seed and the op identifiers, independent of scheduling.
func (in *Injector) fires(ri int, r Rule, attempt, stage, micro int, phase Phase) bool {
	switch {
	case r.Stage != Any && r.Stage != stage:
		return false
	case r.Micro != Any && r.Micro != micro:
		return false
	case r.Attempt != Any && r.Attempt != attempt:
		return false
	case r.Phase != PhaseAny && r.Phase != phase:
		return false
	case r.Prob >= 1:
		return true
	case r.Prob <= 0:
		return false
	}
	h := in.hash(ri, attempt, stage, micro, phase, 0)
	return float64(h>>11)*0x1p-53 < r.Prob
}

// hash folds the op identifiers into one 64-bit value with splitmix64.
func (in *Injector) hash(ri, attempt, stage, micro int, phase Phase, salt uint64) uint64 {
	h := in.seed
	for _, v := range [...]uint64{uint64(ri), uint64(attempt), uint64(stage), uint64(micro), uint64(phase), salt} {
		h = splitmix64(h ^ v)
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sleep blocks for d or until cancel closes, whichever comes first.
func sleep(d time.Duration, cancel <-chan struct{}) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-cancel:
	}
}
