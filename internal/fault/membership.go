package fault

import (
	"fmt"
	"sync"
)

// Membership is the cluster health model that separates transient from
// permanent failures: repeated consecutive failures attributed to one stage
// mean the node backing it is dead, not unlucky. The policy is deliberately
// distinct from the supervisor's retry budget — retries answer "how often do
// we replay a step", the threshold answers "when do we stop believing the
// node will come back".
//
// Each stage is backed by a fixed number of nodes. A stage whose consecutive
// failure streak reaches the threshold loses one node; when its backing hits
// zero the stage is down and the engine must resize onto a new shape. Any
// successful step clears every streak (the pipeline is synchronous: one
// healthy iteration exercises all stages).
type Membership struct {
	threshold     int
	nodesPerStage int

	mu sync.Mutex
	// nodes is the surviving backing per stage.
	// guarded by mu
	nodes []int
	// streak is the consecutive-failure count per stage.
	// guarded by mu
	streak []int
	// lost counts nodes declared permanently dead.
	// guarded by mu
	lost int
}

// NewMembership builds a health model for stages pipeline stages, each backed
// by nodesPerStage nodes, declaring a node dead after threshold consecutive
// failures on its stage.
func NewMembership(stages, nodesPerStage, threshold int) (*Membership, error) {
	switch {
	case stages <= 0:
		return nil, fmt.Errorf("fault: membership needs at least one stage, got %d", stages)
	case nodesPerStage <= 0:
		return nil, fmt.Errorf("fault: membership needs at least one node per stage, got %d", nodesPerStage)
	case threshold <= 0:
		return nil, fmt.Errorf("fault: membership threshold must be positive, got %d", threshold)
	}
	m := &Membership{threshold: threshold, nodesPerStage: nodesPerStage}
	m.nodes, m.streak = freshShape(stages, nodesPerStage)
	return m, nil
}

// freshShape builds the per-stage backing and streak slices for a shape:
// every stage starts with nodesPerStage nodes and a clean streak.
func freshShape(stages, nodesPerStage int) (nodes, streak []int) {
	nodes = make([]int, stages)
	streak = make([]int, stages)
	for s := range nodes {
		nodes[s] = nodesPerStage
	}
	return nodes, streak
}

// ObserveFailure records a failure attributed to one stage. A failure on one
// stage resets the other stages' streaks — the synchronous pipeline fails as
// a whole, so only a *repeatedly* guilty stage accumulates evidence. When the
// streak reaches the threshold the stage loses a node (lost reports it, and
// the streak restarts for the surviving backing); down reports that no
// backing remains and the engine must resize.
func (m *Membership) ObserveFailure(stage int) (lost, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if stage < 0 || stage >= len(m.streak) {
		return false, false
	}
	for s := range m.streak {
		if s != stage {
			m.streak[s] = 0
		}
	}
	if m.nodes[stage] == 0 {
		// Already fully down; the engine should have resized.
		return false, true
	}
	m.streak[stage]++
	if m.streak[stage] < m.threshold {
		return false, false
	}
	m.nodes[stage]--
	m.streak[stage] = 0
	m.lost++
	return true, m.nodes[stage] == 0
}

// ObserveSuccess records a healthy iteration, clearing every stage's streak.
func (m *Membership) ObserveSuccess() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for s := range m.streak {
		m.streak[s] = 0
	}
}

// Resize reinstalls the model for a new pipeline shape after the engine
// replans: every stage of the new shape starts with the construction-time
// backing and a clean streak. The lifetime lost-node count is preserved.
func (m *Membership) Resize(stages int) error {
	if stages <= 0 {
		return fmt.Errorf("fault: membership cannot resize to %d stages", stages)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes, m.streak = freshShape(stages, m.nodesPerStage)
	return nil
}

// Nodes reports the surviving backing of one stage (0 for out-of-range).
func (m *Membership) Nodes(stage int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if stage < 0 || stage >= len(m.nodes) {
		return 0
	}
	return m.nodes[stage]
}

// Stages reports the current pipeline shape.
func (m *Membership) Stages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// LostNodes reports how many nodes have been declared permanently dead over
// the model's lifetime, across resizes.
func (m *Membership) LostNodes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost
}
