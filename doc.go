// Package adapipe is a from-scratch Go reproduction of AdaPipe (Sun et al.,
// "AdaPipe: Optimizing Pipeline Parallelism with Adaptive Recomputation and
// Partitioning", ASPLOS 2024): a search engine that jointly optimizes
// per-stage activation recomputation and pipeline stage partitioning for
// 1F1B pipeline-parallel training of large transformers.
//
// The package exposes three layers of functionality:
//
//   - Planning. NewPlanner runs the paper's two-level dynamic program — a
//     per-stage knapsack over computation units (§4) inside a stage-boundary
//     DP over the layer sequence (§5, Algorithm 1) — and returns a Plan with
//     each stage's layer range, save/recompute set, modeled times and memory
//     breakdown. GPT3 and Llama2 return the two evaluated architectures;
//     ClusterA and ClusterB the two evaluated clusters (A100 and Ascend 910
//     analytical device models).
//
//   - Simulation. Simulate executes a plan on a discrete-event pipeline
//     simulator under 1F1B, GPipe, Chimera or ChimeraD scheduling, yielding
//     iteration time, per-device peak memory, bubble time and a timeline.
//     Methods/Evaluate/Best reproduce the paper's baseline comparison
//     methodology.
//
//   - Execution. The Train* helpers run a real (pure-Go) pipelined
//     transformer trainer whose unit-level recomputation follows a Plan,
//     demonstrating that recomputation and repartitioning leave gradients
//     bit-identical (§7.5, Figure 10).
//
// Every table and figure of the paper's evaluation can be regenerated via
// the benchmarks in bench_test.go or the cmd/experiments binary; see
// EXPERIMENTS.md for the paper-vs-measured record.
package adapipe
