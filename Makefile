GO ?= go
BIN := bin/adapipevet

.PHONY: all build lint vet vet-selftest vet-sarif test race bench observe chaos serve-smoke ci clean

all: build

build:
	$(GO) build ./...

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/adapipevet

.PHONY: FORCE
FORCE:

# vet runs go vet plus the repo's own eight-analyzer suite (maporder,
# floatcmp, pipesync, errcheckcmd, ctxprop, lockguard, detrand, ignoreaudit)
# over every package, in both driver modes: standalone (adapipevet loads and
# type-checks the module itself) and as a go vet -vettool (the go command
# hands it one compilation unit at a time with gc export data). Both must be
# clean — the modes share the analyzers but not the loader, so passing both
# proves the suite is loader-independent.
vet: $(BIN)
	$(GO) vet ./...
	./$(BIN) ./...
	$(GO) vet -vettool=$(abspath $(BIN)) ./...

# lint is the historical alias for vet.
lint: vet

# vet-selftest runs the suite over its own implementation: the analyzers, the
# SARIF/JSON reporters and the drivers must satisfy every invariant they
# enforce (zero un-ignored diagnostics, zero stale ignores).
vet-selftest: $(BIN)
	./$(BIN) ./internal/analysis/... ./cmd/adapipevet/...

# vet-sarif writes the byte-deterministic SARIF 2.1.0 report CI uploads to
# code scanning. The exit status still gates (non-zero on findings).
vet-sarif: $(BIN)
	./$(BIN) -sarif -o adapipevet.sarif ./...

test:
	$(GO) test ./...

# race exercises the concurrent packages under the race detector: the 1F1B
# executor and simulator in full, plus the parallel-search suite (concurrent
# planners, worker-sharded DP, differential parallel-vs-serial checks) of the
# planner packages — run-filtered so the GPT-3-scale timing tests stay out of
# the slow race build.
race:
	$(GO) test -race ./internal/train/... ./internal/sim/... ./internal/pool/... ./internal/serve/... ./internal/fault/...
	$(GO) test -race -run 'Concurrent|Parallel|Workers|Context|Cancel' ./internal/core/... ./internal/partition/...

# bench runs the planner search benchmarks (serial vs parallel, cold and
# incremental replan, grid sweeps cold vs store-warm) and writes
# BENCH_planner.json: ns/op for every mode, the measured speedups (including
# the cost store's sweep amortization), and the search-effort counters
# (knapsack runs, iso-cache hit rate). The committed BENCH_planner.json
# doubles as the regression baseline: a replan or warm-sweep latency more
# than 25% above it fails the run. CI uploads the refreshed file as an artifact so search-performance
# regressions leave a trail.
bench:
	$(GO) run ./cmd/planbench -workers 8 -baseline BENCH_planner.json -tolerance 0.25 -o BENCH_planner.json

# observe runs the observability demo end to end: plan, execute with the op
# recorder, simulate, and emit the drift report plus Chrome-trace/metrics
# files under observe-out/. It fails if the drift report cannot be produced.
observe:
	$(GO) run ./examples/observe -dir observe-out

# chaos runs the fault-injection suite under the race detector across a fixed
# seed matrix, then the end-to-end demos: inject -> survive -> replan for
# transient faults, and inject -> detect loss -> resize for permanent node
# loss. Each demo exits non-zero unless the run survives every injected fault
# and adopts exactly one replan (straggler-driven) or one elastic resize
# (node-loss-driven, with bit-identical losses across the shape change). The
# merged counters land in chaos-metrics.prom, which CI uploads as an artifact.
chaos:
	for seed in 1 7 42; do \
		ADAPIPE_CHAOS_SEED=$$seed $(GO) test -race -run 'Chaos|Fault|Recovery|Watchdog|Straggler|Replan|NonFinite' \
			./internal/fault/... ./internal/train/... ./internal/obs/... ./internal/core/... || exit 1; \
		$(GO) run ./cmd/adapipe -chaos -chaos-nodeloss -chaos-seed $$seed || exit 1; \
	done
	$(GO) run ./examples/chaos -metrics chaos-metrics.prom
	grep -q '^adapipe_fault_resizes_total 1$$' chaos-metrics.prom

# serve-smoke exercises the adapiped daemon end to end from outside the
# process: build it, bind an ephemeral port, check /healthz, plan the same
# request twice asserting (via /metrics) that the repeat is a byte-identical
# cache hit with no extra search work, fetch the cold request's trace twice
# asserting byte-identical Chrome JSON whose phase spans cover >= 95% of the
# request wall, then SIGTERM and require a clean drain. The cold trace lands
# in servesmoke-trace.json, which CI uploads as an artifact.
serve-smoke:
	$(GO) build -o bin/adapiped ./cmd/adapiped
	$(GO) run ./cmd/servesmoke -daemon bin/adapiped -trace-out servesmoke-trace.json

# ci is the full gate the GitHub Actions workflow runs.
ci: build vet vet-selftest test race bench observe chaos serve-smoke

clean:
	rm -rf bin observe-out BENCH_planner.json adapipevet.sarif servesmoke-trace.json chaos-metrics.prom
