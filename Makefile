GO ?= go
BIN := bin/adapipevet

.PHONY: all build lint test race observe chaos ci clean

all: build

build:
	$(GO) build ./...

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/adapipevet

.PHONY: FORCE
FORCE:

# lint runs go vet plus the repo's own analyzer suite (maporder, floatcmp,
# pipesync, errcheckcmd) over every package, both standalone and through the
# go vet -vettool driver.
lint: $(BIN)
	$(GO) vet ./...
	./$(BIN) ./...

test:
	$(GO) test ./...

# race exercises the concurrent packages (the 1F1B executor and simulator)
# under the race detector.
race:
	$(GO) test -race ./internal/train/... ./internal/sim/...

# observe runs the observability demo end to end: plan, execute with the op
# recorder, simulate, and emit the drift report plus Chrome-trace/metrics
# files under observe-out/. It fails if the drift report cannot be produced.
observe:
	$(GO) run ./examples/observe -dir observe-out

# chaos runs the fault-injection suite under the race detector across a fixed
# seed matrix, then the end-to-end inject -> survive -> replan demo. The demo
# exits non-zero unless the run survives every injected fault and adopts
# exactly one straggler-driven replan.
chaos:
	for seed in 1 7 42; do \
		ADAPIPE_CHAOS_SEED=$$seed $(GO) test -race -run 'Chaos|Fault|Recovery|Watchdog|Straggler|Replan|NonFinite' \
			./internal/fault/... ./internal/train/... ./internal/obs/... ./internal/core/... || exit 1; \
	done
	$(GO) run ./examples/chaos

# ci is the full gate the GitHub Actions workflow runs.
ci: build lint test race observe chaos

clean:
	rm -rf bin observe-out
