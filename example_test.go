package adapipe_test

import (
	"context"
	"fmt"

	"adapipe"
)

// ExamplePlanContext runs the full AdaPipe search — adaptive recomputation
// inside adaptive stage partitioning — described by a versioned PlanRequest.
// Plans are deterministic: the same request always produces byte-identical
// plans, which is why the output below can be asserted exactly.
func ExamplePlanContext() {
	req := adapipe.PlanRequest{
		Model:       "tiny",
		TP:          1,
		PP:          4,
		DP:          1,
		GlobalBatch: 16,
		MicroBatch:  1,
		SeqLen:      1024,
	}
	plan, err := adapipe.PlanContext(context.Background(), req, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("stages: %d\n", len(plan.Stages))
	fmt.Printf("micro-batches: %d\n", plan.MicroBatches)
	last := plan.Stages[len(plan.Stages)-1]
	fmt.Printf("layers covered: [%d, %d)\n", plan.Stages[0].LayerLo, last.LayerHi)
	// Output:
	// stages: 4
	// micro-batches: 16
	// layers covered: [0, 18)
}

// ExampleSimulate executes a searched plan on the discrete-event pipeline
// simulator under the 1F1B schedule and checks it against device memory.
func ExampleSimulate() {
	req := adapipe.PlanRequest{
		Model:       "tiny",
		TP:          1,
		PP:          4,
		DP:          1,
		GlobalBatch: 16,
		MicroBatch:  1,
		SeqLen:      1024,
	}
	plan, err := adapipe.PlanContext(context.Background(), req, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := adapipe.Simulate(plan, adapipe.Sched1F1B, false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("iteration time positive: %t\n", res.IterTime > 0)
	fmt.Printf("fits device memory: %t\n", res.MaxPeakMem() <= adapipe.ClusterA().Device.MemCapacity)
	// Output:
	// iteration time positive: true
	// fits device memory: true
}
