// Command adapiped is the AdaPipe planner daemon: a long-lived HTTP JSON
// service over the versioned request schema, with an LRU plan cache,
// singleflight request coalescing, bounded-concurrency admission and graceful
// shutdown. It is the serving path of the search engine — schedulers submit
// the same few configurations over and over, and repeated searches come back
// byte-identical from cache without re-running the DP.
//
// Endpoints:
//
//	POST /v1/plan       plan a request           (cached, coalesced, traced)
//	POST /v1/simulate   plan + simulate a request
//	POST /v1/replan     replan under per-stage cost scales (warm-started)
//	POST /v1/sweep      plan a server-expanded grid of requests (amortized
//	                    over the shared cost store, ranked by iteration time)
//	GET  /v1/trace/{id} Chrome trace JSON of a recent request
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text exposition (counters + histograms)
//
// Every failure response is the canonical error envelope
// {"error":{"code","message","status"}} with a stable machine-readable code.
//
// Example:
//
//	adapiped -addr :8844 &
//	curl -s -X POST localhost:8844/v1/plan -d \
//	  '{"model":"gpt3","tp":8,"pp":8,"dp":1,"seq_len":16384,"global_batch":32}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"adapipe/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8844", "listen address (host:port; port 0 picks a free port)")
		addrFile  = flag.String("addr-file", "", "write the actual listen address to this file once serving (for harnesses using port 0)")
		cache     = flag.Int("cache", 256, "plan-cache bound in entries (negative disables caching)")
		inflight  = flag.Int("inflight", 2, "max concurrently executing searches (the admission gate)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request search deadline, admission queueing included")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "search worker-pool size per request")
		grace     = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain budget")
		traces    = flag.Int("trace-buffer", 64, "request-trace ring size served by /v1/trace/{id} (negative disables tracing)")
		planners  = flag.Int("planner-store", 64, "warm replanner store bound in live planners (evicted replans re-seed cold)")
		costSize  = flag.Int("cost-store-size", 4096, "shared cost-store bound in entries (negative disables the store)")
		costPath  = flag.String("cost-store-path", "", "persist the cost store to this snapshot file (loaded on start, saved on drain; empty disables persistence)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables; keep it off public interfaces)")
		quiet     = flag.Bool("quiet", false, "disable per-request structured logging")
	)
	flag.Parse()

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := serve.New(serve.Config{
		CacheSize:        *cache,
		MaxInFlight:      *inflight,
		RequestTimeout:   *timeout,
		Workers:          *workers,
		TraceBuffer:      *traces,
		PlannerStoreSize: *planners,
		CostStoreSize:    *costSize,
		CostStorePath:    *costPath,
		Logger:           logger,
	})
	if *debugAddr != "" {
		// pprof rides its own listener and mux: the profiling surface stays
		// separable from the service port, and the default ServeMux (which
		// importing net/http/pprof pollutes) is never served.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listener: %v", err)
		}
		fmt.Printf("adapiped: pprof on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "adapiped: pprof server: %v\n", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		sig := <-sigc
		fmt.Printf("adapiped: %v received, draining (budget %s)\n", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Stop accepting, let in-flight handlers finish, then cancel any
		// search still running past the budget.
		err := httpSrv.Shutdown(ctx)
		srv.Close()
		done <- err
	}()

	fmt.Printf("adapiped: listening on %s (cache %d entries, %d in-flight, %s timeout, %d workers)\n",
		bound, *cache, *inflight, *timeout, *workers)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	if err := <-done; err != nil {
		// Drain budget exceeded: cancel searches and force-close.
		srv.Close()
		_ = httpSrv.Close()
		fatalf("graceful shutdown incomplete: %v", err)
	}
	fmt.Println("adapiped: bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adapiped: "+format+"\n", args...)
	os.Exit(1)
}
