// Command adapipe runs the AdaPipe search engine for a model and cluster,
// prints the resulting per-stage plan (layer ranges, save/recompute sets,
// memory breakdown), and optionally simulates it and renders the timeline.
//
// Examples:
//
//	adapipe -model gpt3 -tp 8 -pp 8 -dp 1 -seq 16384 -gbs 32
//	adapipe -model llama2 -cluster b -tp 4 -pp 8 -dp 4 -seq 4096 -gbs 256
//	adapipe -model gpt3 -seq 4096 -gbs 128 -sweep
//	adapipe -chaos -chaos-seed 42 -chaos-steps 20
//	adapipe -chaos -chaos-nodeloss -chaos-seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"adapipe"
)

func main() {
	var (
		modelName = flag.String("model", "gpt3", "model: gpt3, llama2, or tiny")
		cluster   = flag.String("cluster", "a", "cluster: a (64×A100), b (256×Ascend 910) or b-large (2048×Ascend 910)")
		tp        = flag.Int("tp", 8, "tensor-parallel size")
		pp        = flag.Int("pp", 8, "pipeline-parallel size")
		dp        = flag.Int("dp", 1, "data-parallel size")
		seq       = flag.Int("seq", 4096, "sequence length")
		gbs       = flag.Int("gbs", 128, "global batch size")
		mbs       = flag.Int("mbs", 1, "micro-batch size")
		method    = flag.String("method", "AdaPipe", "method: AdaPipe, Even Partitioning, DAPPLE-Full, DAPPLE-Non, Chimera-*, ChimeraD-*")
		sweep     = flag.Bool("sweep", false, "sweep all 3D strategies for the device count and report the best")
		devices   = flag.Int("devices", 64, "device count for -sweep")
		gantt     = flag.Bool("gantt", false, "render the simulated timeline")
		out       = flag.String("o", "", "write the plan as JSON to this file")
		memcsv    = flag.String("memcsv", "", "write the per-device memory timeline as CSV to this file")
		traceOut  = flag.String("trace", "", "write the simulated timeline as Chrome-trace JSON (chrome://tracing, Perfetto) to this file")
		metrics   = flag.String("metrics", "", "write search and simulation metrics in Prometheus text format to this file")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "search worker-pool size; 1 runs fully serial (plans are identical either way)")

		chaos         = flag.Bool("chaos", false, "run a seeded fault-injection survival check on the live engine and exit")
		chaosSeed     = flag.Uint64("chaos-seed", 1, "fault-injection seed for -chaos")
		chaosSteps    = flag.Int("chaos-steps", 12, "optimizer steps for -chaos")
		chaosNodeLoss = flag.Bool("chaos-nodeloss", false, "with -chaos: kill a node permanently mid-run and require exact elastic recovery")
	)
	flag.Parse()

	if *chaos {
		if *chaosNodeLoss {
			runChaosNodeLoss(*chaosSeed, *chaosSteps, *metrics)
			return
		}
		runChaos(*chaosSeed, *chaosSteps, *metrics)
		return
	}

	// All planning flows through the versioned request schema — the same
	// schema the adapiped daemon serves — so the flag surface and the HTTP
	// surface cannot drift.
	req, err := adapipe.PlanRequest{
		Model:       *modelName,
		Cluster:     *cluster,
		Method:      *method,
		TP:          *tp,
		PP:          *pp,
		DP:          *dp,
		SeqLen:      *seq,
		GlobalBatch: *gbs,
		MicroBatch:  *mbs,
	}.Normalize()
	if err != nil {
		fatalf("%v", err)
	}
	m, err := req.ModelConfig()
	if err != nil {
		fatalf("%v", err)
	}
	cl, err := req.ClusterConfig()
	if err != nil {
		fatalf("%v", err)
	}
	meth, err := req.MethodConfig()
	if err != nil {
		fatalf("%v", err)
	}
	opts, err := req.Options(*workers)
	if err != nil {
		fatalf("%v", err)
	}

	if *sweep {
		best, all := adapipe.Best(meth, m, cl, *devices, req.TrainingConfig(), opts)
		fmt.Printf("%d candidate strategies evaluated for %d devices:\n", len(all), *devices)
		for _, o := range all {
			if o.Feasible() {
				fmt.Printf("  %-11s %9.3fs  peak %5.1f GiB\n", o.Strategy, o.IterTime, gib(o.Sim.MaxPeakMem()))
			} else if o.OOM {
				fmt.Printf("  %-11s %9s\n", o.Strategy, "OOM")
			} else {
				fmt.Printf("  %-11s skipped (%v)\n", o.Strategy, o.Err)
			}
		}
		if !best.Feasible() {
			fatalf("no feasible strategy for %s", meth.Name)
		}
		fmt.Printf("\nbest strategy: %s (%.3fs)\n\n", best.Strategy, best.IterTime)
		fmt.Print(adapipe.Describe(best.Plan))
		return
	}

	strat := req.Strategy()
	o, err := adapipe.SimulateContext(context.Background(), req, *workers)
	if err != nil {
		fatalf("%v", err)
	}
	if o.Err != nil {
		fatalf("%v", o.Err)
	}
	if o.Plan == nil {
		fatalf("%s is infeasible (OOM) at %s", meth.Name, strat)
	}
	fmt.Print(adapipe.Describe(o.Plan))
	if o.OOM {
		fmt.Printf("WARNING: simulated peak %.1f GiB exceeds device capacity %.1f GiB\n",
			gib(o.Sim.MaxPeakMem()), gib(cl.Device.MemCapacity))
	}
	fmt.Printf("simulated iteration: %.3fs, bubble ratio %.3f, peak memory %.1f GiB\n",
		o.Sim.IterTime, o.Sim.BubbleRatio(), gib(o.Sim.MaxPeakMem()))
	if *out != "" {
		data, err := json.Marshal(o.Plan)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote plan to %s\n", *out)
	}
	if *gantt {
		res, err := adapipe.Simulate(o.Plan, meth.Schedule, true)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(adapipe.Gantt(res, strat.PP, 100))
	}
	if *memcsv != "" {
		res, err := adapipe.SimulateWithOptions(o.Plan, meth.Schedule, adapipe.SimOptions{Memory: true})
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*memcsv, []byte(adapipe.MemoryCSV(res)), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote memory timeline to %s\n", *memcsv)
	}
	if *traceOut != "" {
		res, err := adapipe.Simulate(o.Plan, meth.Schedule, true)
		if err != nil {
			fatalf("%v", err)
		}
		data, err := adapipe.ChromeTrace(res)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
	if *metrics != "" {
		ms := o.Plan.Search.PromMetrics("adapipe_search")
		ms = append(ms, adapipe.SimMetrics("adapipe_sim", o.Sim)...)
		if err := os.WriteFile(*metrics, []byte(adapipe.RenderProm(ms)), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote metrics to %s\n", *metrics)
	}
}

// runChaos trains a tiny model on the live 1F1B engine for steps optimizer
// steps while a seeded fault injector throws probabilistic straggler delays,
// transient stage panics, and NaN corruptions at it, with step-level recovery
// (retry-from-snapshot plus the non-finite guard) enabled. The process exits
// non-zero if any step fails beyond recovery, so it doubles as a survival
// gate; fault counters go to stdout and, with -metrics, to a Prometheus file.
func runChaos(seed uint64, steps int, metricsPath string) {
	const (
		stages = 3
		micros = 4
		seq    = 12
	)
	cfg := adapipe.TrainConfig{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: seq, Seed: 5}
	// Layer sequence: embed + 2*layers(split attn/mlp) + head.
	pipe, err := adapipe.NewTrainPipeline(cfg, []int{0, 2, 4, 6}, nil, 1e-3)
	if err != nil {
		fatalf("%v", err)
	}
	pipe.Watchdog = 30 * time.Second
	pipe.Fault, err = adapipe.NewFaultInjector(seed,
		adapipe.FaultOn(adapipe.FaultStraggler).WithProb(0.05).WithDelay(time.Millisecond),
		adapipe.FaultOn(adapipe.FaultPanic).WithProb(0.01),
		adapipe.FaultOn(adapipe.FaultCorrupt).WithProb(0.01),
	)
	if err != nil {
		fatalf("%v", err)
	}
	sup, err := adapipe.NewTrainSupervisor(pipe, adapipe.TrainRecovery{
		MaxRetries: 6, Backoff: time.Millisecond, GuardNonFinite: true,
	})
	if err != nil {
		fatalf("%v", err)
	}
	corpus := adapipe.NewTrainCorpus(cfg.Vocab, 1<<12, 11)
	rng := adapipe.NewRNG(11)
	var first, last float64
	skipped := 0
	for i := 0; i < steps; i++ {
		loss, err := sup.Step(corpus.Batches(micros, seq, rng))
		if err != nil {
			fatalf("chaos seed %d: step %d failed beyond recovery: %v", seed, i, err)
		}
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			skipped++
			continue
		}
		if first == 0 {
			first = loss
		}
		last = loss
	}
	counters := sup.Counters()
	fmt.Printf("chaos seed %d survived %d steps on %d stages (loss %.4f -> %.4f, %d skipped)\n",
		seed, steps, stages, first, last, skipped)
	fmt.Printf("fault counters: %+v\n", counters)
	if int64(skipped) != counters.SkippedSteps {
		fatalf("chaos seed %d: %d non-finite losses vs %d skipped steps", seed, skipped, counters.SkippedSteps)
	}
	if metricsPath != "" {
		text := adapipe.RenderProm(adapipe.FaultMetrics("adapipe_fault", counters))
		if err := os.WriteFile(metricsPath, []byte(text), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote fault metrics to %s\n", metricsPath)
	}
}

// runChaosNodeLoss is the elastic-recovery survival gate: a 3-stage training
// run loses stage 1's node permanently halfway through (plus probabilistic
// straggler delays, which perturb timing but never arithmetic). The membership
// model must declare the node dead after two consecutive failures, the
// supervisor must resize onto a 2-stage pipeline exactly once, and the full
// loss curve must stay bit-identical to a fault-free run — losses are
// partition-invariant, so the clean run is the exact target on both sides of
// the resize. Any deviation exits non-zero.
func runChaosNodeLoss(seed uint64, steps int, metricsPath string) {
	const micros = 4
	const seq = 12
	cfg := adapipe.TrainConfig{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: seq, Seed: 5}
	lossAt := steps / 2

	run := func(pipe *adapipe.TrainPipeline, sup *adapipe.TrainSupervisor) []float64 {
		corpus := adapipe.NewTrainCorpus(cfg.Vocab, 1<<12, 11)
		rng := adapipe.NewRNG(11)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			batches := corpus.Batches(micros, seq, rng)
			var loss float64
			var err error
			if sup != nil {
				loss, err = sup.Step(batches)
			} else {
				loss, err = pipe.Step(batches)
			}
			if err != nil {
				fatalf("chaos seed %d: step %d failed beyond recovery: %v", seed, i, err)
			}
			losses = append(losses, loss)
		}
		return losses
	}

	cleanPipe, err := adapipe.NewTrainPipeline(cfg, []int{0, 2, 4, 6}, nil, 1e-3)
	if err != nil {
		fatalf("%v", err)
	}
	clean := run(cleanPipe, nil)

	stragglers := adapipe.FaultOn(adapipe.FaultStraggler).WithProb(0.05).WithDelay(time.Millisecond)
	pipe, err := adapipe.NewTrainPipeline(cfg, []int{0, 2, 4, 6}, nil, 1e-3)
	if err != nil {
		fatalf("%v", err)
	}
	pipe.Watchdog = 30 * time.Second
	pipe.Fault, err = adapipe.NewFaultInjector(seed,
		stragglers,
		adapipe.FaultOn(adapipe.FaultNodeLoss).AtStage(1).AtAttempt(lossAt),
	)
	if err != nil {
		fatalf("%v", err)
	}
	sup, err := adapipe.NewTrainSupervisor(pipe, adapipe.TrainRecovery{
		MaxRetries: 1, Backoff: time.Millisecond,
	})
	if err != nil {
		fatalf("%v", err)
	}
	health, err := adapipe.NewMembership(3, 1, 2)
	if err != nil {
		fatalf("%v", err)
	}
	sup.Elastic = adapipe.TrainElastic{
		Health: health,
		Rebuild: func(downStage int) (*adapipe.TrainPipeline, error) {
			fmt.Printf("chaos seed %d: stage %d declared permanently lost; rebuilding on 2 stages\n", seed, downStage)
			other := cfg
			other.Seed = 77 // the handoff alone must determine the state
			next, err := adapipe.NewTrainPipeline(other, []int{0, 3, 6}, nil, 1e-3)
			if err != nil {
				return nil, err
			}
			next.Fault, err = adapipe.NewFaultInjector(seed, stragglers)
			return next, err
		},
	}
	losses := run(nil, sup)

	for i := range clean {
		if losses[i] != clean[i] {
			fatalf("chaos seed %d: step %d loss %v != fault-free loss %v; elastic recovery was not exact",
				seed, i, losses[i], clean[i])
		}
	}
	counters := sup.Counters()
	if counters.Resizes != 1 || counters.LossesDetected != 1 {
		fatalf("chaos seed %d: %d resizes and %d losses detected, want exactly 1 of each (counters %+v)",
			seed, counters.Resizes, counters.LossesDetected, counters)
	}
	if counters.NodeLosses != 2 {
		fatalf("chaos seed %d: %d node-loss faults, want 2 (original + the retry that convicts)", seed, counters.NodeLosses)
	}
	fmt.Printf("chaos seed %d: node loss survived; %d steps bit-identical across one elastic resize (3 -> 2 stages)\n",
		seed, steps)
	fmt.Printf("fault counters: %+v\n", counters)
	if metricsPath != "" {
		text := adapipe.RenderProm(adapipe.FaultMetrics("adapipe_fault", counters))
		if err := os.WriteFile(metricsPath, []byte(text), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote fault metrics to %s\n", metricsPath)
	}
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adapipe: "+format+"\n", args...)
	os.Exit(1)
}
