// Command adapipevet runs the AdaPipe lint suite (internal/analysis): nine
// analyzers enforcing planner determinism (maporder, floatcmp, detrand),
// pipeline and planner concurrency hygiene (pipesync, lockguard), context
// propagation (ctxprop), error handling in the binaries (errcheckcmd),
// suppression hygiene (ignoreaudit), and deprecated-API usage (depapi).
//
// Standalone (multichecker-style) usage — loads packages itself:
//
//	adapipevet ./...
//	adapipevet -analyzers maporder,floatcmp adapipe/internal/core
//	adapipevet -sarif -o adapipevet.sarif ./...
//	adapipevet -json ./...
//
// -sarif emits a SARIF 2.1.0 report (file URIs relative to the working
// directory, for CI code-scanning upload); -json emits the flat machine
// format. Both are byte-deterministic for a given tree. -o redirects either
// report to a file; diagnostics still gate the exit status.
//
// Vet-tool (unitchecker-style) usage — driven by the go command, one
// type-checked compilation unit per invocation (here -json means the go
// command's unitchecker wire format, not the machine format):
//
//	go vet -vettool=$(which adapipevet) ./...
//
// Exit status: 0 when clean, 1 on a driver error, 2 when diagnostics were
// reported (matching go vet's convention).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"adapipe/internal/analysis"
)

func main() {
	// The go command probes its vet tool before use: -V=full must print a
	// version line, -flags the tool's analyzer flags as JSON.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-V=full", "-V":
			fmt.Printf("%s version %s-%s\n", progName(), analysis.ToolName, analysis.ToolVersion)
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}

	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (standalone) or the unitchecker wire format (vet-tool)")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 report (standalone mode only)")
	outPath := flag.String("o", "", "write the -json/-sarif report to this file instead of stdout")
	tests := flag.Bool("tests", true, "also analyze in-package _test.go files (standalone mode)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adapipevet [flags] [packages]\n       adapipevet <unit>.cfg  (as go vet -vettool)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*names, ","))
		if err != nil {
			fatal(err)
		}
	}
	if *sarifOut && *jsonOut {
		fatal(fmt.Errorf("-sarif and -json are mutually exclusive"))
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		if *sarifOut {
			fatal(fmt.Errorf("-sarif is a standalone-mode flag; the go vet driver consumes the wire format"))
		}
		os.Exit(unitcheck(args[0], analyzers, *jsonOut))
	}
	os.Exit(standalone(args, analyzers, reportMode{json: *jsonOut, sarif: *sarifOut, path: *outPath}, *tests))
}

// reportMode selects the standalone output format and destination.
type reportMode struct {
	json  bool
	sarif bool
	path  string
}

// standalone loads the named package patterns (default ./...) and runs the
// suite over all of them in one process.
func standalone(patterns []string, analyzers []*analysis.Analyzer, mode reportMode, tests bool) int {
	pkgs, err := analysis.Load(patterns, analysis.LoadOptions{Tests: tests})
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages matched %v", patterns))
	}
	fset := pkgs[0].Fset
	diags := analysis.Run(pkgs, analyzers)

	out := io.Writer(os.Stdout)
	closeOut := func() error { return nil }
	if mode.path != "" {
		f, err := os.Create(mode.path)
		if err != nil {
			fatal(err)
		}
		out = f
		closeOut = f.Close
	}
	// Report file URIs are relative to the working directory — CI runs from
	// the module root, so uploads carry repo-relative paths.
	root, _ := os.Getwd()
	switch {
	case mode.sarif:
		err = analysis.WriteSARIF(out, fset, analyzers, diags, root)
	case mode.json:
		err = analysis.WriteJSON(out, fset, diags, root)
	default:
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if err != nil {
		fatal(err)
	}
	if err := closeOut(); err != nil {
		fatal(err)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the JSON configuration the go command hands a -vettool for
// each compilation unit (see cmd/vet and unitchecker in x/tools; field
// names are part of the go command's contract).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit described by a go vet config. It
// type-checks the unit's files against the export data the go command
// already built for the dependencies, so no package loading happens here.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	// The suite defines no cross-package facts, but the go command expects
	// the facts output file to exist either way.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only run for a dependency: nothing to report
	}

	applies := false
	for _, a := range analyzers {
		if a.Applies == nil || a.Applies(cfg.ImportPath) {
			applies = true
			break
		}
	}
	if !applies || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	imp := &exportDataImporter{
		fset: fset,
		cfg:  &cfg,
		base: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}).(types.ImporterFrom),
	}
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	diags := analysis.Run([]*analysis.Package{pkg}, analyzers)
	emit(fset, diags, jsonOut)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// exportDataImporter resolves imports through the vet config's ImportMap
// (source import path → canonical path) and the gc export data files the go
// command supplies in PackageFile.
type exportDataImporter struct {
	fset *token.FileSet
	cfg  *vetConfig
	base types.ImporterFrom
}

func (e *exportDataImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, e.cfg.Dir, 0)
}

func (e *exportDataImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if canonical, ok := e.cfg.ImportMap[path]; ok {
		path = canonical
	}
	return e.base.ImportFrom(path, dir, mode)
}

// emit prints diagnostics for the vet-tool mode: file:line:col: analyzer:
// message to stderr, or the unitchecker JSON wire format to stdout.
func emit(fset *token.FileSet, diags []analysis.Diagnostic, jsonOut bool) {
	if !jsonOut {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		return
	}
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out, err := json.MarshalIndent(byAnalyzer, "", "\t")
	if err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(append(out, '\n')); err != nil {
		fatal(err)
	}
}

func progName() string {
	return filepath.Base(os.Args[0])
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
	os.Exit(1)
}
