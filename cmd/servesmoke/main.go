// Command servesmoke is the end-to-end smoke test for the adapiped daemon.
// It spawns a built daemon binary on an ephemeral port and walks the serving
// contract from the outside: /healthz answers, a cold /v1/plan runs exactly
// one search and returns a trace whose spans account for (nearly) all of the
// request wall time, the trace renders byte-identically across repeated
// /v1/trace/{id} fetches, the identical repeat plan is a cache hit with a
// byte-identical body and no extra knapsack work, a 3-point /v1/sweep is
// amortized by the shared cost store (knapsack runs well under points ×
// cold-per-point, with the reuse visible as cost-store hits in /metrics) and
// embeds the cached base plan byte-identically, failures answer with the
// canonical error envelope, and SIGTERM drains to a clean exit. Any violation
// exits non-zero, so `make serve-smoke` is a pass/fail gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

const planBody = `{"model":"tiny","tiny_layers":12,"cluster":"a","method":"AdaPipe","tp":1,"pp":4,"dp":1,"seq_len":2048,"global_batch":16,"micro_batch":1}`

// minCoverage is the share of the request wall time the trace's phase spans
// must account for: a trace that loses 5%+ of a request to unexplained gaps
// is not fit for latency work.
const minCoverage = 0.95

func main() {
	daemon := flag.String("daemon", "bin/adapiped", "path to the built adapiped binary")
	timeout := flag.Duration("timeout", 30*time.Second, "overall smoke budget")
	traceOut := flag.String("trace-out", "", "write the cold request's Chrome trace JSON to this file (CI uploads it as an artifact)")
	flag.Parse()

	if err := run(*daemon, *timeout, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run(daemon string, budget time.Duration, traceOut string) error {
	deadline := time.Now().Add(budget)
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	addrFile := filepath.Join(dir, "addr")

	var daemonOut bytes.Buffer
	cmd := exec.Command(daemon,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-cache", "8", "-inflight", "2", "-timeout", "20s")
	cmd.Stdout = &daemonOut
	cmd.Stderr = &daemonOut
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", daemon, err)
	}
	// exited is closed once the daemon terminates; exitErr holds its Wait
	// result. A closed channel can be received from any number of times, so
	// both the failure-path cleanup and the shutdown check can wait on it.
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(exited) }()
	// On any failure path, make sure the daemon does not outlive the harness.
	defer func() {
		_ = cmd.Process.Kill()
		<-exited
	}()

	addr, err := waitForAddr(addrFile, exited, deadline, &daemonOut)
	if err != nil {
		return err
	}
	base := "http://" + addr

	// 1. Liveness.
	if err := waitHealthy(base, deadline); err != nil {
		return fmt.Errorf("healthz: %v\ndaemon output:\n%s", err, daemonOut.String())
	}
	fmt.Printf("servesmoke: daemon healthy on %s\n", addr)

	// 2. Cold plan: one search, disposition "miss", a trace id in the
	// X-Adapipe-Trace header.
	cold, disp, traceID, reqHash, err := postPlan(base)
	if err != nil {
		return err
	}
	if disp != "miss" {
		return fmt.Errorf("first plan disposition = %q, want miss", disp)
	}
	if traceID == "" {
		return fmt.Errorf("cold plan response carried no X-Adapipe-Trace header")
	}
	if reqHash == "" {
		return fmt.Errorf("cold plan response carried no X-Adapipe-Request-Hash header")
	}
	m, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	if m["adapipe_serve_searches_total"] != 1 {
		return fmt.Errorf("after cold plan searches_total = %v, want 1", m["adapipe_serve_searches_total"])
	}
	knapsacks := m["adapipe_serve_knapsack_runs_total"]
	if knapsacks <= 0 {
		return fmt.Errorf("cold search reported %v knapsack runs, want > 0", knapsacks)
	}
	fmt.Printf("servesmoke: cold plan searched (%v knapsack runs)\n", knapsacks)

	// 3. The trace: retrievable by id, valid Chrome trace JSON,
	// byte-identical across two renders, and its phase spans account for
	// (nearly) the whole request.
	trace1, err := getTrace(base, traceID)
	if err != nil {
		return err
	}
	trace2, err := getTrace(base, traceID)
	if err != nil {
		return err
	}
	if !bytes.Equal(trace1, trace2) {
		return fmt.Errorf("trace %s rendered differently across two fetches", traceID)
	}
	cov, err := traceCoverage(trace1)
	if err != nil {
		return fmt.Errorf("trace %s: %w", traceID, err)
	}
	if cov < minCoverage {
		return fmt.Errorf("trace %s phases account for %.1f%% of the request wall, want >= %.0f%%\ntrace:\n%s",
			traceID, cov*100, minCoverage*100, trace1)
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, trace1, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
		fmt.Printf("servesmoke: wrote %s\n", traceOut)
	}
	fmt.Printf("servesmoke: trace %s deterministic, %.1f%% of request wall accounted\n", traceID, cov*100)

	// 4. Repeat: cache hit, byte-identical body, zero extra search work.
	warm, disp, _, warmHash, err := postPlan(base)
	if err != nil {
		return err
	}
	if disp != "hit" {
		return fmt.Errorf("repeat plan disposition = %q, want hit", disp)
	}
	if !bytes.Equal(cold, warm) {
		return fmt.Errorf("cached response differs from cold response:\ncold: %s\nwarm: %s", cold, warm)
	}
	if warmHash != reqHash {
		return fmt.Errorf("request hash changed across identical requests: %q -> %q", reqHash, warmHash)
	}
	m, err = scrapeMetrics(base)
	if err != nil {
		return err
	}
	switch {
	case m["adapipe_serve_cache_hits_total"] != 1:
		return fmt.Errorf("cache_hits_total = %v, want 1", m["adapipe_serve_cache_hits_total"])
	case m["adapipe_serve_searches_total"] != 1:
		return fmt.Errorf("repeat re-searched: searches_total = %v, want 1", m["adapipe_serve_searches_total"])
	case m["adapipe_serve_knapsack_runs_total"] != knapsacks:
		return fmt.Errorf("repeat did knapsack work: %v -> %v", knapsacks, m["adapipe_serve_knapsack_runs_total"])
	case m["adapipe_serve_request_seconds_count"] < 2:
		return fmt.Errorf("request latency histogram recorded %v observations, want >= 2",
			m["adapipe_serve_request_seconds_count"])
	}
	fmt.Println("servesmoke: repeat served from cache, byte-identical, no extra search work")

	// 5. Sweep amortization: a global-batch grid over the cached base shares
	// one cost family, so the whole grid must cost far fewer knapsack runs
	// than points × cold-per-point, with the reuse visible as cost-store hits
	// in /metrics. The base point must come back byte-identical to /v1/plan.
	if err := smokeSweep(base, cold, knapsacks); err != nil {
		return err
	}

	// 6. Error envelope: a garbage body answers with the canonical
	// machine-readable error shape.
	if err := smokeErrorEnvelope(base); err != nil {
		return err
	}

	// 7. Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signalling daemon: %w", err)
	}
	select {
	case <-exited:
		if exitErr != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v\ndaemon output:\n%s", exitErr, daemonOut.String())
		}
	case <-time.After(time.Until(deadline)):
		return fmt.Errorf("daemon did not exit within budget after SIGTERM\ndaemon output:\n%s", daemonOut.String())
	}
	fmt.Println("servesmoke: SIGTERM drained to clean exit")
	return nil
}

// smokeSweep posts a 3-point global-batch sweep whose first point is the
// already-cached cold plan and checks the amortization contract: every point
// planned or served, the base point byte-identical to the /v1/plan body's
// plan, and the grid's knapsack cost well under points × cold-per-point.
func smokeSweep(base string, coldPlanResp []byte, coldKnapsacks float64) error {
	before, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	sweepBody := `{"base":` + planBody + `,"axes":{"global_batch":[16,32,48]}}`
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/sweep status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Adapipe-Cache"); h != "miss" {
		return fmt.Errorf("cold sweep disposition = %q, want miss", h)
	}
	if resp.Header.Get("X-Adapipe-Request-Hash") == "" {
		return fmt.Errorf("sweep response carried no X-Adapipe-Request-Hash header")
	}
	if resp.Header.Get("X-Adapipe-Trace") == "" {
		return fmt.Errorf("sweep response carried no X-Adapipe-Trace header")
	}
	var sweep struct {
		Points []struct {
			Plan  json.RawMessage `json:"plan"`
			Error json.RawMessage `json:"error"`
		} `json:"points"`
		Ranking []int `json:"ranking"`
		Stats   struct {
			Points, Planned, Deduped, Cached, Failed int
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &sweep); err != nil {
		return fmt.Errorf("sweep response does not parse: %w\n%s", err, body)
	}
	if sweep.Stats.Points != 3 || sweep.Stats.Failed != 0 || len(sweep.Ranking) != 3 {
		return fmt.Errorf("sweep stats %+v ranking %v, want 3 clean points", sweep.Stats, sweep.Ranking)
	}
	if sweep.Stats.Cached < 1 {
		return fmt.Errorf("the already-planned base point was not served from cache: %+v", sweep.Stats)
	}
	// The base grid point must embed exactly the plan bytes /v1/plan returned.
	var planResp struct {
		Plan json.RawMessage `json:"plan"`
	}
	if err := json.Unmarshal(coldPlanResp, &planResp); err != nil {
		return err
	}
	if !bytes.Equal(sweep.Points[0].Plan, planResp.Plan) {
		return fmt.Errorf("sweep base point differs from /v1/plan:\nsweep: %s\nplan:  %s", sweep.Points[0].Plan, planResp.Plan)
	}
	after, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	delta := after["adapipe_serve_knapsack_runs_total"] - before["adapipe_serve_knapsack_runs_total"]
	budget := 3 * coldKnapsacks
	if delta >= budget {
		return fmt.Errorf("3-point sweep added %v knapsack runs, want < %v (cold-per-point %v): store reuse broken",
			delta, budget, coldKnapsacks)
	}
	if after["adapipe_serve_cost_store_hits_total"] <= before["adapipe_serve_cost_store_hits_total"] {
		return fmt.Errorf("sweep produced no cost-store hits (%v -> %v)",
			before["adapipe_serve_cost_store_hits_total"], after["adapipe_serve_cost_store_hits_total"])
	}
	if after["adapipe_serve_sweep_requests_total"] < 1 || after["adapipe_serve_sweep_points_total"] < 3 {
		return fmt.Errorf("sweep counters missing from /metrics (requests %v, points %v)",
			after["adapipe_serve_sweep_requests_total"], after["adapipe_serve_sweep_points_total"])
	}
	fmt.Printf("servesmoke: 3-point sweep amortized (%v knapsack runs added, cold point costs %v)\n", delta, coldKnapsacks)
	return nil
}

// smokeErrorEnvelope checks the failure contract from the outside: a garbage
// body answers 400 with the canonical {"error":{code,message,status}} shape.
func smokeErrorEnvelope(base string) error {
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader("not json"))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("garbage sweep status %d, want 400: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		return fmt.Errorf("error response Content-Type %q, want application/json", ct)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Status  int    `json:"status"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("error body is not the canonical envelope: %s", body)
	}
	if env.Error.Code != "invalid_request" || env.Error.Status != http.StatusBadRequest || env.Error.Message == "" {
		return fmt.Errorf("error envelope %+v, want code invalid_request status 400", env.Error)
	}
	fmt.Println("servesmoke: error envelope canonical (invalid_request, 400)")
	return nil
}

// waitForAddr polls the -addr-file the daemon writes once its listener is
// bound, bailing out early if the daemon dies first.
func waitForAddr(path string, exited <-chan struct{}, deadline time.Time, out *bytes.Buffer) (string, error) {
	for time.Now().Before(deadline) {
		select {
		case <-exited:
			return "", fmt.Errorf("daemon exited before binding\ndaemon output:\n%s", out.String())
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never wrote its address file\ndaemon output:\n%s", out.String())
}

func waitHealthy(base string, deadline time.Time) error {
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "ok") {
				return nil
			}
			lastErr = fmt.Errorf("status %d body %q", resp.StatusCode, body)
		} else {
			lastErr = err
		}
		time.Sleep(20 * time.Millisecond)
	}
	return lastErr
}

func postPlan(base string) (body []byte, disposition, traceID, requestHash string, err error) {
	resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		return nil, "", "", "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", "", "", fmt.Errorf("/v1/plan status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Adapipe-Cache"), resp.Header.Get("X-Adapipe-Trace"),
		resp.Header.Get("X-Adapipe-Request-Hash"), nil
}

// getTrace fetches one stored trace as Chrome trace JSON.
func getTrace(base, id string) ([]byte, error) {
	resp, err := http.Get(base + "/v1/trace/" + id)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/trace/%s status %d: %s", id, resp.StatusCode, body)
	}
	return body, nil
}

// traceCoverage parses a Chrome trace document and returns the share of the
// root request span's duration covered by the disjoint phase spans.
func traceCoverage(doc []byte) (float64, error) {
	var d struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return 0, fmt.Errorf("does not parse as Chrome trace JSON: %w", err)
	}
	var root, phases float64
	roots := 0
	for _, ev := range d.TraceEvents {
		if ev.Ph != "X" {
			return 0, fmt.Errorf("event %q has phase %q, want complete events (X)", ev.Name, ev.Ph)
		}
		switch ev.Cat {
		case "request":
			root = ev.Dur
			roots++
		case "phase":
			phases += ev.Dur
		}
	}
	if roots != 1 {
		return 0, fmt.Errorf("found %d request spans, want exactly 1", roots)
	}
	if root <= 0 {
		return 0, fmt.Errorf("request span has non-positive duration %g", root)
	}
	return phases / root, nil
}

// scrapeMetrics parses the unlabelled adapipe_serve_* gauges out of the
// Prometheus text exposition. Labelled series (requests_total) are skipped;
// the smoke assertions only need the scalar counters.
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, nil
}
