// Command experiments regenerates the tables and figures of the AdaPipe
// paper's evaluation (§7) on the simulated substrate and prints them in the
// paper's layout.
//
//	experiments -run all
//	experiments -run fig6
//	experiments -run table3,table4,fig10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adapipe/internal/experiments"
)

var runners = []struct {
	name string
	run  func() (string, error)
}{
	{"fig1", func() (string, error) {
		r, err := experiments.Figure1()
		return experiments.FormatFigure1(r), err
	}},
	{"fig2", func() (string, error) {
		r, err := experiments.Figure2()
		return experiments.FormatFigure2(r), err
	}},
	{"fig3", func() (string, error) {
		r, err := experiments.Figure3()
		return experiments.FormatFigure3(r), err
	}},
	{"fig5", func() (string, error) {
		r, err := experiments.Figure5()
		return experiments.FormatEndToEnd("Figure 5: Llama 2 end-to-end (cluster A, 32 GPUs)", r), err
	}},
	{"fig6", func() (string, error) {
		r, err := experiments.Figure6()
		return experiments.FormatEndToEnd("Figure 6: GPT-3 end-to-end (cluster A, 64 GPUs)", r), err
	}},
	{"fig7", func() (string, error) {
		r, err := experiments.Figure7()
		return experiments.FormatFigure7(r), err
	}},
	{"table3", func() (string, error) {
		r, err := experiments.Table3()
		return experiments.FormatTable3(r), err
	}},
	{"fig8", func() (string, error) {
		r, err := experiments.Figure8()
		return experiments.FormatFigure8(r), err
	}},
	{"fig9", func() (string, error) {
		r, err := experiments.Figure9()
		return experiments.FormatFigure9(r), err
	}},
	{"table4", func() (string, error) {
		r, err := experiments.Table4()
		return experiments.FormatTable4(r), err
	}},
	{"fig10", func() (string, error) {
		r, err := experiments.Figure10(experiments.DefaultFigure10Config())
		return experiments.FormatFigure10(r), err
	}},
	{"ablation", func() (string, error) {
		r, err := experiments.Ablation()
		return experiments.FormatAblation(r), err
	}},
	{"interleaved", func() (string, error) {
		r, err := experiments.Interleaved()
		return experiments.FormatInterleaved(r), err
	}},
	{"sweep", func() (string, error) {
		r, err := experiments.SequenceSweep()
		return experiments.FormatSweep(r), err
	}},
	{"accuracy", func() (string, error) {
		r, err := experiments.ModelAccuracy()
		return experiments.FormatAccuracy(r), err
	}},
}

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (fig1,fig2,fig3,fig5,fig6,fig7,fig8,fig9,fig10,table3,table4,ablation,interleaved,sweep,accuracy) or 'all'")
	flag.Parse()

	want := map[string]bool{}
	if *run != "all" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, r := range runners {
		if *run != "all" && !want[r.name] {
			continue
		}
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n%s\n", r.name, out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched -run=%s\n", *run)
		os.Exit(1)
	}
}
