// Command planbench benchmarks the planner search — serial vs parallel, plus
// straggler-driven replanning — on the paper's GPT-3 configuration and writes
// the machine-readable record to BENCH_planner.json (`make bench`; CI uploads
// it as an artifact). The report carries ns/op for both modes, the measured
// parallel speedup, and the search-effort counters (knapsack runs, iso-cache
// hit rate) so a wall-time regression can be traced to the work behind it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"adapipe/internal/core"
	"adapipe/internal/obs"
	"adapipe/internal/request"
)

// gptPlanner builds the benchmark planner through the versioned request
// schema — the same construction path the CLI and the adapiped daemon use —
// so the benchmark measures exactly what serving runs.
func gptPlanner(workers int) (*core.Planner, error) {
	req := request.PlanRequest{
		Model: "gpt3", Cluster: "a", Method: "AdaPipe",
		TP: 8, PP: 8, DP: 1, SeqLen: 16384, GlobalBatch: 32,
	}
	return req.NewPlanner(workers)
}

func benchSearch(workers int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl, err := gptPlanner(workers)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pl.Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchReplan(workers int) (testing.BenchmarkResult, error) {
	pl, err := gptPlanner(workers)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	plan, err := pl.Plan()
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	scale := make([]float64, 8)
	for i := range scale {
		scale[i] = 1
	}
	scale[2] = 1.25 // one degraded stage, the straggler-replanning scenario
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pl.ReplanWithScale(plan, scale); err != nil {
				b.Fatal(err)
			}
		}
	})
	return res, nil
}

func run(name string, r testing.BenchmarkResult) obs.BenchRun {
	return obs.BenchRun{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	workers := flag.Int("workers", 8, "worker-pool size of the parallel runs")
	out := flag.String("o", "BENCH_planner.json", "output path for the JSON report")
	flag.Parse()

	serial := benchSearch(1)
	par := benchSearch(*workers)
	replan, err := benchReplan(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}

	// One instrumented search ties the wall times to the work they bought.
	pl, err := gptPlanner(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	if _, err := pl.Plan(); err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}

	report := obs.BenchReport{
		Model:           "GPT-3 175B",
		Shape:           fmt.Sprintf("L=%d p=8 n=%d", pl.LayerCount(), pl.MicroBatches()),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Workers:         *workers,
		SpeedupParallel: float64(serial.NsPerOp()) / float64(par.NsPerOp()),
		ReplanNsPerOp:   replan.NsPerOp(),
		KnapsackRuns:    pl.Stats.KnapsackRuns,
		CacheHitRate:    pl.Stats.CacheHitRate(),
		Runs: []obs.BenchRun{
			run("PlanSearch/serial", serial),
			run(fmt.Sprintf("PlanSearch/parallel-%d", *workers), par),
			run("ReplanWithScale", replan),
		},
	}
	if err := obs.WriteBenchJSON(*out, report); err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	fmt.Printf("planbench: serial %v/op, parallel(%d) %v/op, speedup %.2fx on %d CPUs; replan %v/op\n",
		time.Duration(serial.NsPerOp()), *workers, time.Duration(par.NsPerOp()),
		report.SpeedupParallel, report.GoMaxProcs, time.Duration(replan.NsPerOp()))
	fmt.Printf("planbench: wrote %s\n", *out)
}
