// Command planbench benchmarks the planner search — serial vs parallel, plus
// straggler-driven replanning — on the paper's GPT-3 configuration and writes
// the machine-readable record to BENCH_planner.json (`make bench`; CI uploads
// it as an artifact). The report carries ns/op for both modes, the measured
// parallel speedup, and the search-effort counters (knapsack runs, iso-cache
// hit rate) so a wall-time regression can be traced to the work behind it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"adapipe/internal/core"
	"adapipe/internal/coststore"
	"adapipe/internal/obs"
	"adapipe/internal/request"
)

// gptPlanner builds the benchmark planner through the versioned request
// schema — the same construction path the CLI and the adapiped daemon use —
// so the benchmark measures exactly what serving runs.
func gptPlanner(workers int) (*core.Planner, error) {
	req := request.PlanRequest{
		Model: "gpt3", Cluster: "a", Method: "AdaPipe",
		TP: 8, PP: 8, DP: 1, SeqLen: 16384, GlobalBatch: 32,
	}
	return req.NewPlanner(workers)
}

func benchSearch(workers int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl, err := gptPlanner(workers)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pl.Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchReplan measures one straggler replanning round in both regimes. Cold:
// ResetIncremental before every round drops the memo, so each one pays the
// full re-search. Incremental: the planner keeps its memo, and the two scale
// vectors alternate a different value at stage 2 so every round really
// invalidates and recomputes levels 0..2 rather than reassembling a no-op.
//
// The replan figures feed the baseline regression gate, so they must be
// stable against transient host load: the benchmark runs three times and the
// fastest repetition is reported — the min is the load-noise-resistant
// latency statistic (noise only ever adds time).
func benchReplan(workers int, incremental bool) (testing.BenchmarkResult, error) {
	pl, err := gptPlanner(workers)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	plan, err := pl.Plan()
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	scales := [2][]float64{
		{1, 1, 1.25, 1, 1, 1, 1, 1}, // one degraded stage, the straggler scenario
		{1, 1, 1.35, 1, 1, 1, 1, 1},
	}
	var best testing.BenchmarkResult
	for rep := 0; rep < 3; rep++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scale := scales[0]
				if incremental {
					scale = scales[i%2]
				} else {
					pl.ResetIncremental()
				}
				r, err := pl.ReplanWithScale(plan, scale)
				if err != nil {
					b.Fatal(err)
				}
				if incremental {
					plan = r.New
				}
			}
		})
		if rep == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	return best, nil
}

// sweepGrid is the benchmarked sweep: the paper's GPT-3 shape swept over the
// global batch — three points of one cost family, the /v1/sweep sweet spot.
var sweepGrid = []int{32, 64, 96}

func sweepPointPlanner(workers, globalBatch int) (*core.Planner, error) {
	req := request.PlanRequest{
		Model: "gpt3", Cluster: "a", Method: "AdaPipe",
		TP: 8, PP: 8, DP: 1, SeqLen: 16384, GlobalBatch: globalBatch,
	}
	return req.NewPlanner(workers)
}

// benchSweep measures one grid pass, cold vs warm. Cold: no cost store — every
// point pays its own knapsack work, the pre-store per-point price. Warm: all
// points share one store prewarmed (outside the timed region) by a single
// point of the family, so each point answers its stage costs from the store —
// the amortized price every /v1/sweep point after the first pays. The ratio of
// the two is the store's measured amortization.
func benchSweep(workers int, warm bool) (testing.BenchmarkResult, error) {
	var store *coststore.Store
	if warm {
		store = coststore.New(0)
		pl, err := sweepPointPlanner(workers, sweepGrid[0])
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		if err := pl.SetCostSource(store); err != nil {
			return testing.BenchmarkResult{}, err
		}
		if _, err := pl.Plan(); err != nil {
			return testing.BenchmarkResult{}, err
		}
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, gb := range sweepGrid {
				pl, err := sweepPointPlanner(workers, gb)
				if err != nil {
					b.Fatal(err)
				}
				if store != nil {
					if err := pl.SetCostSource(store); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := pl.Plan(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}), nil
}

// checkBaseline gates on regressions against a previous report: a measured
// replan latency above baseline*(1+tolerance) fails the run. A baseline
// field that is zero was written by an older build and is skipped — absence
// of history is not a regression.
func checkBaseline(baseline obs.BenchReport, report obs.BenchReport, tolerance float64) error {
	check := func(name string, base, got int64) error {
		if base <= 0 {
			fmt.Printf("planbench: baseline has no %s, skipping that gate\n", name)
			return nil
		}
		limit := int64(float64(base) * (1 + tolerance))
		if got > limit {
			return fmt.Errorf("%s regressed: %v/op vs baseline %v/op (tolerance %.0f%%)",
				name, time.Duration(got), time.Duration(base), tolerance*100)
		}
		fmt.Printf("planbench: %s %v/op within %.0f%% of baseline %v/op\n",
			name, time.Duration(got), tolerance*100, time.Duration(base))
		return nil
	}
	if err := check("replan_ns_per_op", baseline.ReplanNsPerOp, report.ReplanNsPerOp); err != nil {
		return err
	}
	if err := check("replan_incremental_ns_per_op", baseline.ReplanIncrementalNsPerOp, report.ReplanIncrementalNsPerOp); err != nil {
		return err
	}
	return check("sweep_warm_ns_per_point", baseline.SweepWarmNsPerPoint, report.SweepWarmNsPerPoint)
}

func run(name string, r testing.BenchmarkResult) obs.BenchRun {
	return obs.BenchRun{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	workers := flag.Int("workers", 8, "worker-pool size of the parallel runs")
	out := flag.String("o", "BENCH_planner.json", "output path for the JSON report")
	baselinePath := flag.String("baseline", "", "previous BENCH_planner.json to gate replan latency against (empty disables the gate)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative replan regression vs the baseline")
	flag.Parse()

	// Read the baseline before benchmarking: -o and -baseline usually name
	// the same file, and the report write must not clobber the history it is
	// being compared against.
	var baseline obs.BenchReport
	haveBaseline := false
	if *baselinePath != "" {
		b, err := obs.ReadBenchJSON(*baselinePath)
		switch {
		case err == nil:
			baseline, haveBaseline = b, true
		case os.IsNotExist(err):
			fmt.Printf("planbench: no baseline at %s, skipping the regression gate\n", *baselinePath)
		default:
			fmt.Fprintln(os.Stderr, "planbench:", err)
			os.Exit(1)
		}
	}

	serial := benchSearch(1)
	par := benchSearch(*workers)
	replan, err := benchReplan(*workers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	replanInc, err := benchReplan(*workers, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	sweepCold, err := benchSweep(*workers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	sweepWarm, err := benchSweep(*workers, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	points := int64(len(sweepGrid))

	// One instrumented search ties the wall times to the work they bought.
	pl, err := gptPlanner(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	if _, err := pl.Plan(); err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}

	report := obs.BenchReport{
		Model:                    "GPT-3 175B",
		Shape:                    fmt.Sprintf("L=%d p=8 n=%d", pl.LayerCount(), pl.MicroBatches()),
		GoMaxProcs:               runtime.GOMAXPROCS(0),
		Workers:                  *workers,
		SpeedupParallel:          float64(serial.NsPerOp()) / float64(par.NsPerOp()),
		ReplanNsPerOp:            replan.NsPerOp(),
		ReplanIncrementalNsPerOp: replanInc.NsPerOp(),
		SpeedupReplanIncremental: float64(replan.NsPerOp()) / float64(replanInc.NsPerOp()),
		SweepColdNsPerPoint:      sweepCold.NsPerOp() / points,
		SweepWarmNsPerPoint:      sweepWarm.NsPerOp() / points,
		SpeedupSweepWarm:         float64(sweepCold.NsPerOp()) / float64(sweepWarm.NsPerOp()),
		KnapsackRuns:             pl.Stats.KnapsackRuns,
		CacheHitRate:             pl.Stats.CacheHitRate(),
		Runs: []obs.BenchRun{
			run("PlanSearch/serial", serial),
			run(fmt.Sprintf("PlanSearch/parallel-%d", *workers), par),
			run("ReplanWithScale", replan),
			run("ReplanIncremental", replanInc),
			run(fmt.Sprintf("SweepGrid/cold-%dpt", points), sweepCold),
			run(fmt.Sprintf("SweepGrid/warm-%dpt", points), sweepWarm),
		},
	}
	if err := obs.WriteBenchJSON(*out, report); err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
	fmt.Printf("planbench: serial %v/op, parallel(%d) %v/op, speedup %.2fx on %d CPUs; replan cold %v/op, incremental %v/op (%.1fx)\n",
		time.Duration(serial.NsPerOp()), *workers, time.Duration(par.NsPerOp()),
		report.SpeedupParallel, report.GoMaxProcs, time.Duration(replan.NsPerOp()),
		time.Duration(replanInc.NsPerOp()), report.SpeedupReplanIncremental)
	fmt.Printf("planbench: %d-point sweep cold %v/point, store-warm %v/point (%.1fx amortization)\n",
		points, time.Duration(report.SweepColdNsPerPoint), time.Duration(report.SweepWarmNsPerPoint),
		report.SpeedupSweepWarm)
	fmt.Printf("planbench: wrote %s\n", *out)
	if haveBaseline {
		if err := checkBaseline(baseline, report, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "planbench:", err)
			os.Exit(1)
		}
	}
}
