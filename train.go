package adapipe

import (
	"context"

	"adapipe/internal/experiments"
	"adapipe/internal/train"
)

// Training-engine façade: a pure-Go pipelined transformer trainer with real
// unit-level recomputation (the execution engine of §6 in miniature).
type (
	// TrainConfig sizes the trainable micro-transformer.
	TrainConfig = train.Config
	// TrainRunConfig describes a full training run (partitioning,
	// recomputation strategy, steps, micro-batches).
	TrainRunConfig = train.RunConfig
	// TrainResult carries the per-step losses and per-stage activation
	// high-water marks.
	TrainResult = train.RunResult
	// SaveSpec selects which computation units of a block keep their
	// activations; unsaved units are recomputed before backward.
	SaveSpec = train.SaveSpec
)

// SaveAll returns a SaveSpec that keeps every unit (no recomputation).
func SaveAll() SaveSpec { return train.SaveAll() }

// SaveNone returns a SaveSpec that recomputes every optional unit.
func SaveNone() SaveSpec { return train.SaveNone() }

// Train builds a micro-transformer, partitions it into pipeline stages, and
// trains it on a deterministic synthetic corpus with multi-goroutine 1F1B
// scheduling. Gradients are bit-identical across recomputation strategies
// and partitionings (§7.5).
func Train(rc TrainRunConfig) (TrainResult, error) { return train.Run(rc) }

// TrainContext is Train with cancellation: ctx is checked between optimizer
// steps, and a cancelled run returns the losses of the steps that completed
// alongside ctx.Err(). Gradients of completed steps are unaffected.
func TrainContext(ctx context.Context, rc TrainRunConfig) (TrainResult, error) {
	return train.RunContext(ctx, rc)
}

// TrainDataParallel runs d synchronized pipeline replicas with gradient
// all-reduce (the DP dimension of 3D parallelism) and returns per-step mean
// losses. Replicas are built identically from the run config's seed; the
// global micro-batches are split across them each step.
func TrainDataParallel(d int, rc TrainRunConfig) (TrainResult, error) {
	return train.RunDataParallel(d, rc)
}

// TrainSpecFromPlan converts a planner Plan into engine stage bounds and
// per-block SaveSpecs, so a searched strategy can be executed for real.
func TrainSpecFromPlan(p *Plan, m Model) (bounds []int, saves [][]SaveSpec) {
	return experiments.SavesFromPlan(p, m.LayerSequence())
}
