package adapipe

import (
	"adapipe/internal/core"
	"adapipe/internal/fault"
	"adapipe/internal/obs"
	"adapipe/internal/tensor"
	"adapipe/internal/train"
)

// Fault-tolerance façade: deterministic fault injection into the live 1F1B
// engine, step-level recovery (snapshot/retry/skip), straggler detection from
// measured traces, and the planner's straggler-driven replan entry point.
type (
	// FaultRule is one fault source: a kind (straggler delay, transient
	// panic, NaN/Inf corruption) plus stage/micro/attempt/phase filters.
	// Build with FaultOn and the chainable At*/With* setters.
	FaultRule = fault.Rule
	// FaultKind is a fault class (FaultStraggler, FaultPanic, FaultCorrupt).
	FaultKind = fault.Kind
	// FaultInjector evaluates a seeded rule set deterministically: the same
	// seed fires the same faults on every run, independent of goroutine
	// scheduling. Attach via TrainRunConfig.Fault or TrainPipeline.Fault.
	FaultInjector = fault.Injector
	// FaultCounters aggregates injected faults and recovery actions.
	FaultCounters = obs.FaultCounters
	// Straggler identifies a stage persistently slower than planned.
	Straggler = obs.Straggler
	// StragglerDetector watches measured traces for sustained per-stage
	// slowdowns (min-ratio normalized, windowed, one-shot trigger).
	StragglerDetector = obs.StragglerDetector
	// TrainPipeline is the live 1F1B executor (cancellable, watchdogged).
	TrainPipeline = train.Pipeline
	// TrainRecovery is the step-level failure policy (retries, backoff,
	// non-finite guard).
	TrainRecovery = train.Recovery
	// TrainSupervisor drives a pipeline under a recovery policy, with
	// checkpoint-based Rebind for adopting replans mid-run.
	TrainSupervisor = train.Supervisor
	// TrainRecorder captures per-op spans of one pipeline iteration.
	TrainRecorder = obs.Recorder
	// TrainBatch is one micro-batch of token/target rows.
	TrainBatch = train.Batch
	// TrainCorpus samples deterministic synthetic batches.
	TrainCorpus = train.Corpus
	// RNG is the deterministic generator used for batch sampling.
	RNG = tensor.RNG
	// Replan is the outcome of a straggler-driven replanning attempt:
	// repriced incumbent, re-searched plan, both simulations, adoption
	// verdict. Produced by Planner.ReplanWithScale.
	Replan = core.Replan
	// ShapeReplan is the outcome of an elastic shape replan after a node
	// count change: the planner and plan for the winning pipeline depth on
	// the resized cluster. Produced by Planner.ReplanWithShape.
	ShapeReplan = core.ShapeReplan
	// Membership is the cluster health model that separates transient from
	// permanent failures by consecutive-failure streaks per stage.
	Membership = fault.Membership
	// TrainElastic configures the supervisor's elastic recovery: a health
	// model, a Rebuild hook for node loss, an optional Grow hook for
	// scale-up arrivals.
	TrainElastic = train.Elastic
	// TrainStageError is the per-stage failure a supervised step surfaces;
	// the health model uses its Stage to attribute blame.
	TrainStageError = train.StageError
	// InjectedNodeLoss is the panic payload of a FaultNodeLoss rule.
	InjectedNodeLoss = fault.InjectedNodeLoss
)

// Fault kinds and rule filters, re-exported from the fault package.
const (
	// FaultStraggler delays matching ops by the rule's Delay (cancellable).
	FaultStraggler = fault.Straggler
	// FaultPanic panics matching ops, modeling a transient stage failure.
	FaultPanic = fault.Panic
	// FaultCorrupt overwrites one output element with NaN/Inf.
	FaultCorrupt = fault.Corrupt
	// FaultNodeLoss kills every op of one stage from the rule's Attempt
	// onward — a permanent loss no retry can outrun.
	FaultNodeLoss = fault.NodeLoss
	// FaultScaleUp is an arrival event (a spare node joining), counted by
	// the injector's ArrivedNodes, never an op fault.
	FaultScaleUp = fault.ScaleUp
	// FaultAny matches every stage/micro/attempt in a rule filter.
	FaultAny = fault.Any
	// FaultPhaseForward restricts a rule to forward ops.
	FaultPhaseForward = fault.PhaseForward
	// FaultPhaseBackward restricts a rule to backward ops.
	FaultPhaseBackward = fault.PhaseBackward
)

// Watchdog/guard sentinels, testable with errors.Is.
var (
	// ErrWatchdog wraps iteration errors from the pipeline watchdog timeout.
	ErrWatchdog = train.ErrWatchdog
	// ErrNonFinite wraps guard trips on NaN/Inf losses or gradients.
	ErrNonFinite = train.ErrNonFinite
)

// FaultOn starts a FaultRule of the given kind matching every op; narrow it
// with AtStage/AtMicro/AtAttempt/OnPhase/WithProb/WithDelay.
func FaultOn(kind FaultKind) FaultRule { return fault.On(kind) }

// NewFaultInjector validates the rules and returns a deterministic injector
// keyed by seed.
func NewFaultInjector(seed uint64, rules ...FaultRule) (*FaultInjector, error) {
	return fault.New(seed, rules...)
}

// NewTrainPipeline builds a network, partitions it at the given bounds with
// the given per-stage save specs, and wraps it in the live 1F1B executor —
// the step-at-a-time counterpart of Train for callers that drive training
// manually (supervision, mid-run replanning).
func NewTrainPipeline(cfg TrainConfig, bounds []int, saves [][]SaveSpec, lr float64) (*TrainPipeline, error) {
	net, err := train.NewNet(cfg)
	if err != nil {
		return nil, err
	}
	stages, err := train.Split(net, bounds, saves)
	if err != nil {
		return nil, err
	}
	return train.NewPipeline(stages, lr), nil
}

// NewTrainSupervisor wraps a pipeline with the given recovery policy.
func NewTrainSupervisor(p *TrainPipeline, policy TrainRecovery) (*TrainSupervisor, error) {
	return train.NewSupervisor(p, policy)
}

// NewTrainRecorder returns an op recorder to attach to a pipeline's Recorder
// field; each iteration's trace is then available via its Trace method.
func NewTrainRecorder() *TrainRecorder { return obs.NewRecorder() }

// NewTrainCorpus builds the deterministic synthetic corpus Train uses, for
// manual step loops.
func NewTrainCorpus(vocab, length int, seed uint64) *TrainCorpus {
	return train.NewCorpus(vocab, length, seed)
}

// NewRNG returns a deterministic generator for TrainCorpus.Batches.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// NewStragglerDetector builds a detector from per-stage predicted micro-step
// times (plan forward+backward per micro), a relative-slowdown threshold
// (e.g. 1.5) and a consecutive-step window.
func NewStragglerDetector(predicted []float64, threshold float64, window int) (*StragglerDetector, error) {
	return obs.NewStragglerDetector(predicted, threshold, window)
}

// NewMembership builds a health model for a pipeline of stages, each backed
// by nodesPerStage nodes, declaring a node dead after threshold consecutive
// failures attributed to its stage. Attach via TrainSupervisor.Elastic.
func NewMembership(stages, nodesPerStage, threshold int) (*Membership, error) {
	return fault.NewMembership(stages, nodesPerStage, threshold)
}

// FaultMetrics converts fault counters into Prometheus-style gauges under
// the given name prefix.
func FaultMetrics(prefix string, c FaultCounters) []Metric { return obs.FaultMetrics(prefix, c) }
