package adapipe

import (
	"adapipe/internal/core"
	"adapipe/internal/obs"
	"adapipe/internal/train"
)

// Observability façade: measured-run tracing, predicted-vs-measured drift
// reports and Prometheus-style metric exposition over the internal obs
// package.
type (
	// TrainTrace is a measured pipeline iteration: per-op wall-clock spans,
	// per-stage stall time and live-activation curves. Convert to a
	// SimResult via its Result method to reuse Gantt/ChromeTrace/MemoryCSV.
	TrainTrace = train.Trace
	// Drift is a predicted-vs-measured comparison of one plan: per-stage
	// forward/backward time error, bubble-fraction error and peak-memory
	// error, normalized by the measured/modeled time scale.
	Drift = obs.Drift
	// StageDrift is the per-stage row of a Drift report.
	StageDrift = obs.StageDrift
	// Metric is one Prometheus-style gauge sample.
	Metric = obs.Metric
	// SearchStats counts the planner's search effort (knapsack runs,
	// cache hit rate, DP cells, wall time); every Plan carries a snapshot
	// in its Search field.
	SearchStats = core.SearchStats
)

// Compare aligns a measured pipeline run against a simulated timeline of the
// same plan and reports the drift: per-stage forward/backward time error,
// bubble-fraction error and peak-memory error. Pass the measured trace
// through TrainTrace.Result first. Measured wall time and modeled device
// time live on different scales (the trainer is real Go math, the model an
// accelerator), so Compare factors out the busy-time ratio and reports
// schedule-shape drift.
func Compare(measured, simulated SimResult) (Drift, error) {
	return obs.Compare(measured, simulated)
}

// RenderProm serializes metrics in the Prometheus text exposition format.
func RenderProm(metrics []Metric) string { return obs.RenderProm(metrics) }

// SimMetrics converts a simulated result into gauges under the given name
// prefix (iteration time, bubble ratio, per-device busy/bubble/peak-bytes).
func SimMetrics(prefix string, res SimResult) []Metric { return obs.SimMetrics(prefix, res) }

// TraceMetrics converts a measured trace into gauges under the given name
// prefix (wall time, stall ratio, per-stage busy/stall/peak-activation).
func TraceMetrics(prefix string, t *TrainTrace) []Metric { return obs.TraceMetrics(prefix, t) }

// DriftMetrics converts a drift report into gauges under the given name
// prefix (time scale, iteration error, per-stage relative errors).
func DriftMetrics(prefix string, d Drift) []Metric { return obs.DriftMetrics(prefix, d) }
