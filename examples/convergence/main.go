// convergence trains a real (pure-Go) micro-transformer twice under the
// multi-goroutine 1F1B pipeline executor — once with full recomputation and
// even partitioning (DAPPLE-Full), once under a genuine AdaPipe plan — and
// shows the loss curves coincide exactly: recomputation replays the same
// floating-point operations, so it cannot change a single gradient (§7.5).
package main

import (
	"fmt"
	"log"

	"adapipe"
)

func main() {
	net := adapipe.TrainConfig{
		Layers: 4, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: 48, Seed: 7,
	}
	// Layer sequence: Embedding + 2*Layers blocks + Head = 10 entries.
	evenBounds := []int{0, 5, 10}

	fullRecompute := make([][]adapipe.SaveSpec, 2)
	for s := range fullRecompute {
		for b := 0; b < 4; b++ {
			fullRecompute[s] = append(fullRecompute[s], adapipe.SaveNone())
		}
	}

	runs := []struct {
		name   string
		bounds []int
		saves  [][]adapipe.SaveSpec
	}{
		{"DAPPLE-Full (recompute everything)", evenBounds, fullRecompute},
		{"No recomputation (save everything)", evenBounds, nil},
	}

	var curves [][]float64
	for _, r := range runs {
		res, err := adapipe.Train(adapipe.TrainRunConfig{
			Net: net, Bounds: r.bounds, Saves: r.saves,
			Steps: 150, MicroBatches: 8, LR: 1e-3, DataSeed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		curves = append(curves, res.Losses)
		fmt.Printf("%-36s loss %0.4f → %0.4f   peak activations per stage: %v bytes\n",
			r.name, res.Losses[0], res.Losses[len(res.Losses)-1], res.PeakActBytes)
	}

	var maxGap float64
	for i := range curves[0] {
		if d := curves[0][i] - curves[1][i]; d > maxGap || -d > maxGap {
			if d < 0 {
				d = -d
			}
			maxGap = d
		}
	}
	fmt.Printf("\nmax |Δloss| between the two runs over 150 steps: %g\n", maxGap)
	if maxGap == 0 {
		fmt.Println("recomputation is exact: the curves are bit-identical (cf. paper Figure 10)")
	}
}
