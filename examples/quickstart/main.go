// Quickstart: plan GPT-3 175B training on the A100 cluster with AdaPipe and
// compare the searched plan against the full-recomputation baseline. The
// whole flow goes through the versioned PlanRequest API — the same schema the
// CLI, the benchmarks and the adapiped daemon speak — so this example doubles
// as a template for driving the planner programmatically.
package main

import (
	"context"
	"fmt"
	"log"

	"adapipe"
)

func main() {
	ctx := context.Background()
	req := adapipe.PlanRequest{
		Model:       "gpt3",
		Cluster:     "a",
		TP:          8,
		PP:          8,
		DP:          1,
		GlobalBatch: 32,
		MicroBatch:  1,
		SeqLen:      16384,
	}

	// Search: adaptive recomputation (per-stage knapsack) + adaptive
	// partitioning (stage-boundary DP).
	plan, err := adapipe.PlanContext(ctx, req, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== AdaPipe plan ===")
	fmt.Print(adapipe.Describe(plan))

	// Execute the plan on the discrete-event pipeline simulator.
	res, err := adapipe.Simulate(plan, adapipe.Sched1F1B, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated iteration: %.3fs (bubble ratio %.3f)\n", res.IterTime, res.BubbleRatio())

	// Compare against the DAPPLE-Full baseline on the same strategy: the
	// same request with only the method switched.
	baseReq := req
	baseReq.Method = "DAPPLE-Full"
	base, err := adapipe.SimulateContext(ctx, baseReq, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !base.Feasible() {
		log.Fatalf("baseline infeasible: %v", base.Err)
	}
	fmt.Printf("DAPPLE-Full baseline: %.3fs  →  AdaPipe speedup %.2fx\n",
		base.IterTime, base.IterTime/res.IterTime)
}
