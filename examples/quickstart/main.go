// Quickstart: plan GPT-3 175B training on the A100 cluster with AdaPipe and
// compare the searched plan against the full-recomputation baseline.
package main

import (
	"fmt"
	"log"

	"adapipe"
)

func main() {
	m := adapipe.GPT3()
	cluster := adapipe.ClusterA()
	strategy := adapipe.Strategy{TP: 8, PP: 8, DP: 1}
	training := adapipe.TrainingConfig{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}

	// Search: adaptive recomputation (per-stage knapsack) + adaptive
	// partitioning (stage-boundary DP).
	plan, err := adapipe.PlanAdaPipe(m, cluster, strategy, training)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== AdaPipe plan ===")
	fmt.Print(adapipe.Describe(plan))

	// Execute the plan on the discrete-event pipeline simulator.
	res, err := adapipe.Simulate(plan, adapipe.Sched1F1B, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated iteration: %.3fs (bubble ratio %.3f)\n", res.IterTime, res.BubbleRatio())

	// Compare against the DAPPLE-Full baseline on the same strategy.
	baselineMethod, err := adapipe.MethodByName("DAPPLE-Full")
	if err != nil {
		log.Fatal(err)
	}
	base := adapipe.Evaluate(baselineMethod, m, cluster, strategy, training, adapipe.DefaultOptions())
	if !base.Feasible() {
		log.Fatalf("baseline infeasible: %v", base.Err)
	}
	fmt.Printf("DAPPLE-Full baseline: %.3fs  →  AdaPipe speedup %.2fx\n",
		base.IterTime, base.IterTime/res.IterTime)
}
