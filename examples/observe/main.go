// observe demonstrates the observability layer end to end: it plans a tiny
// model with the real two-level search, executes the plan on the pure-Go
// 1F1B pipeline engine with the op recorder attached, renders the *measured*
// timeline through the same Gantt/Chrome-trace renderers the simulator uses,
// and aligns measured against predicted in a drift report.
//
// Outputs (under -dir):
//
//	measured.trace.json   Chrome-trace JSON of the measured run (load in
//	                      chrome://tracing or https://ui.perfetto.dev)
//	simulated.trace.json  Chrome-trace JSON of the simulated timeline
//	drift.txt             predicted-vs-measured drift report
//	metrics.prom          search + simulation + measured-run gauges in
//	                      Prometheus text format
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"adapipe"
)

func main() {
	dir := flag.String("dir", ".", "output directory for trace, drift and metrics files")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	const (
		layers = 4
		stages = 2
		micros = 8
		seq    = 48
	)
	// The same architecture described twice: once for the planner's
	// analytical cost model, once for the trainable engine. BytesPerValue
	// matches the engine's float64 tensors so measured and modeled
	// activation footprints live on the same scale.
	m := adapipe.Model{
		Name: "observe-tiny", DecoderLayers: layers, Hidden: 64, Heads: 4,
		KVHeads: 4, FFNHidden: 128, Vocab: 64, BytesPerValue: 8,
	}
	net := adapipe.TrainConfig{
		Layers: layers, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: seq, Seed: 7,
	}
	strat := adapipe.Strategy{TP: 1, PP: stages, DP: 1}
	tc := adapipe.TrainingConfig{GlobalBatch: micros, MicroBatch: 1, SeqLen: seq}

	// Size a toy device so adaptive recomputation is forced to choose:
	// large enough that full recomputation fits, too small to save all.
	capacity, err := toyCapacity(m, strat, tc, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	opts := toyOptions()
	//adapipevet:ignore depapi synthetic toy cluster with tuned capacity is not expressible in the PlanRequest schema
	planner, err := adapipe.NewPlanner(m, toyCluster(stages, capacity), strat, tc, opts)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adapipe.Describe(plan))

	// Execute the plan for real with the op recorder attached.
	bounds, saves := adapipe.TrainSpecFromPlan(plan, m)
	res, err := adapipe.Train(adapipe.TrainRunConfig{
		Net: net, Bounds: bounds, Saves: saves,
		Steps: 3, MicroBatches: micros, LR: 1e-3, DataSeed: 7,
		Record: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Trace == nil {
		log.Fatal("observe: training run returned no trace")
	}
	measured := res.Trace.Result()
	fmt.Printf("\nmeasured final step: wall %.1fms, stall ratio %.3f\n",
		res.Trace.WallTime*1e3, res.Trace.StallRatio())
	fmt.Print(adapipe.Gantt(measured, stages, 100))

	// Simulate the same plan and align the two timelines.
	simulated, err := adapipe.SimulateWithOptions(plan, adapipe.Sched1F1B,
		adapipe.SimOptions{Timeline: true, Memory: true})
	if err != nil {
		log.Fatal(err)
	}
	drift, err := adapipe.Compare(measured, simulated)
	if err != nil {
		log.Fatalf("observe: drift report unavailable: %v", err)
	}
	fmt.Printf("\n%s", drift.String())

	writeFile(*dir, "drift.txt", []byte(drift.String()))
	meastr, err := adapipe.ChromeTrace(measured)
	if err != nil {
		log.Fatal(err)
	}
	writeFile(*dir, "measured.trace.json", meastr)
	simtr, err := adapipe.ChromeTrace(simulated)
	if err != nil {
		log.Fatal(err)
	}
	writeFile(*dir, "simulated.trace.json", simtr)

	metrics := plan.Search.PromMetrics("adapipe_search")
	metrics = append(metrics, adapipe.SimMetrics("adapipe_sim", simulated)...)
	metrics = append(metrics, adapipe.TraceMetrics("adapipe_train", res.Trace)...)
	metrics = append(metrics, adapipe.DriftMetrics("adapipe_drift", drift)...)
	writeFile(*dir, "metrics.prom", []byte(adapipe.RenderProm(metrics)))
}

func writeFile(dir, name string, data []byte) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// toyCluster builds a single-node cluster of small synthetic accelerators;
// the planner needs a hardware model even when the executor is the pure-Go
// engine.
func toyCluster(devices int, capacity int64) adapipe.Cluster {
	return adapipe.Cluster{
		Name: "toy",
		Device: adapipe.Device{
			Name:                "toy-accelerator",
			PeakFLOPS:           10e12,
			MemBandwidth:        500e9,
			MemCapacity:         capacity,
			GEMMEfficiency:      0.5,
			AttnEfficiency:      0.4,
			BandwidthEfficiency: 0.8,
		},
		DevicesPerNode:     devices,
		Nodes:              1,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 10e9,
		LinkLatency:        2e-6,
	}
}

// toyOptions scales the planner to megabyte-size models: the datacenter
// framework overhead and reserve would swamp a toy.
func toyOptions() adapipe.Options {
	opts := adapipe.DefaultOptions()
	opts.Memory.OverheadBytes = 16 << 20
	opts.MemoryReserve = 0.05
	opts.Quantum = 4096
	return opts
}

// toyCapacity probes the no-recomputation memory footprint and returns a
// device capacity where frac of the activation footprint fits.
func toyCapacity(m adapipe.Model, strat adapipe.Strategy, tc adapipe.TrainingConfig, frac float64) (int64, error) {
	opts := toyOptions()
	opts.Recompute = adapipe.RecomputeNone
	opts.Partition = adapipe.PartitionEven
	opts.IgnoreMemoryLimit = true
	//adapipevet:ignore depapi memory probe needs an unbounded toy cluster the PlanRequest schema cannot express
	probe, err := adapipe.NewPlanner(m, toyCluster(strat.PP, 1<<40), strat, tc, opts)
	if err != nil {
		return 0, err
	}
	plan, err := probe.Plan()
	if err != nil {
		return 0, err
	}
	var capacity int64
	for _, st := range plan.Stages {
		c := st.Mem.Static() + int64(frac*float64(st.Mem.Activations()))
		if c > capacity {
			capacity = c
		}
	}
	// Inflate so the intended headroom survives the adaptive reserve.
	return int64(float64(capacity) / (1 - toyOptions().MemoryReserve) * 1.02), nil
}
