// gpt3search sweeps every valid 3D parallelism strategy for GPT-3 on 64
// A100s (the paper's Table 3 methodology) and reports how AdaPipe's best
// configuration compares with the baselines at each strategy.
package main

import (
	"fmt"
	"log"

	"adapipe"
)

func main() {
	m := adapipe.GPT3()
	cluster := adapipe.ClusterA()
	training := adapipe.TrainingConfig{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096}
	const devices = 64

	methods := []string{"DAPPLE-Full", "DAPPLE-Non", "AdaPipe"}
	fmt.Printf("%-12s", "(t, p, d)")
	for _, name := range methods {
		fmt.Printf(" %14s", name)
	}
	fmt.Println()

	for _, strat := range adapipe.EnumerateStrategies(devices) {
		if _, err := training.MicroBatches(strat); err != nil {
			continue
		}
		fmt.Printf("%-12s", strat)
		for _, name := range methods {
			meth, err := adapipe.MethodByName(name)
			if err != nil {
				log.Fatal(err)
			}
			o := adapipe.Evaluate(meth, m, cluster, strat, training, adapipe.DefaultOptions())
			if o.Feasible() {
				fmt.Printf(" %13.2fs", o.IterTime)
			} else {
				fmt.Printf(" %14s", "OOM")
			}
		}
		fmt.Println()
	}

	best, _ := adapipe.Best(mustMethod("AdaPipe"), m, cluster, devices, training, adapipe.DefaultOptions())
	if !best.Feasible() {
		log.Fatal("no feasible AdaPipe strategy")
	}
	fmt.Printf("\nbest AdaPipe strategy: %s at %.2fs\n\n", best.Strategy, best.IterTime)
	fmt.Print(adapipe.Describe(best.Plan))
}

func mustMethod(name string) adapipe.Method {
	m, err := adapipe.MethodByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return m
}
