// timeline renders ASCII Gantt charts of the pipeline schedules the paper
// discusses — GPipe vs 1F1B (Figure 2) and Chimera's bidirectional variants —
// executed by the discrete-event simulator, and writes a Chrome trace of the
// AdaPipe plan for interactive inspection.
package main

import (
	"fmt"
	"log"
	"os"

	"adapipe"
)

func main() {
	// DAPPLE-Full = full recomputation + even partitioning: the fixed plan
	// shape that makes the schedule structure easiest to read in the charts.
	req := adapipe.PlanRequest{
		Model:       "tiny",
		Cluster:     "a",
		Method:      "DAPPLE-Full",
		TP:          1,
		PP:          4,
		DP:          1,
		GlobalBatch: 8,
		MicroBatch:  1,
		SeqLen:      2048,
	}
	planner, err := adapipe.NewPlannerFromRequest(req, 0)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	pp := plan.Strategy.PP

	for _, kind := range []struct {
		name string
		k    adapipe.ScheduleKind
	}{
		{"GPipe", adapipe.SchedGPipe},
		{"1F1B (DAPPLE)", adapipe.Sched1F1B},
		{"Chimera", adapipe.SchedChimera},
	} {
		res, err := adapipe.Simulate(plan, kind.k, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: iteration %.4fs, bubble ratio %.3f ==\n", kind.name, res.IterTime, res.BubbleRatio())
		fmt.Print(adapipe.Gantt(res, pp, 96))
	}

	res, err := adapipe.Simulate(plan, adapipe.Sched1F1B, true)
	if err != nil {
		log.Fatal(err)
	}
	data, err := adapipe.ChromeTrace(res)
	if err != nil {
		log.Fatal(err)
	}
	const out = "timeline.trace.json"
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (load in chrome://tracing or Perfetto)\n", out)
}
