// llama2ascend plans Llama 2 70B training on the 32 GB Ascend 910 cluster
// (cluster B), where memory pressure is much tighter than on the A100s: the
// no-recomputation baseline OOMs at sequence length 4096 and AdaPipe's
// per-stage save sets become strongly uneven. Every evaluation goes through
// the versioned PlanRequest schema, switching only the Method field.
package main

import (
	"context"
	"fmt"
	"log"

	"adapipe"
)

func main() {
	ctx := context.Background()
	// The paper's cluster-B setting: TP 4, PP 8, batch scaled to DP.
	req := adapipe.PlanRequest{
		Model:       "llama2",
		Cluster:     "b",
		TP:          4,
		PP:          8,
		DP:          4,
		GlobalBatch: 256,
		MicroBatch:  1,
		SeqLen:      4096,
	}

	for _, name := range []string{"DAPPLE-Full", "DAPPLE-Non", "Even Partitioning", "AdaPipe"} {
		r := req
		r.Method = name
		o, err := adapipe.SimulateContext(ctx, r, 0)
		if err != nil {
			log.Fatal(err)
		}
		if !o.Feasible() {
			fmt.Printf("%-18s OOM (32 GiB devices)\n", name)
			continue
		}
		fmt.Printf("%-18s %8.2fs  peak %.1f GiB\n", name, o.IterTime, float64(o.Sim.MaxPeakMem())/(1<<30))
	}

	plan, err := adapipe.PlanContext(ctx, req, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== AdaPipe plan on Ascend 910 ===")
	fmt.Print(adapipe.Describe(plan))
}
