// llama2ascend plans Llama 2 70B training on the 32 GB Ascend 910 cluster
// (cluster B), where memory pressure is much tighter than on the A100s: the
// no-recomputation baseline OOMs at sequence length 4096 and AdaPipe's
// per-stage save sets become strongly uneven.
package main

import (
	"fmt"
	"log"

	"adapipe"
)

func main() {
	m := adapipe.Llama2()
	cluster := adapipe.ClusterB()
	// The paper's cluster-B setting: TP 4, PP 8, batch scaled to DP.
	strategy := adapipe.Strategy{TP: 4, PP: 8, DP: 4}
	training := adapipe.TrainingConfig{GlobalBatch: 256, MicroBatch: 1, SeqLen: 4096}

	for _, name := range []string{"DAPPLE-Full", "DAPPLE-Non", "Even Partitioning", "AdaPipe"} {
		meth, err := adapipe.MethodByName(name)
		if err != nil {
			log.Fatal(err)
		}
		o := adapipe.Evaluate(meth, m, cluster, strategy, training, adapipe.DefaultOptions())
		if !o.Feasible() {
			fmt.Printf("%-18s OOM (32 GiB devices)\n", name)
			continue
		}
		fmt.Printf("%-18s %8.2fs  peak %.1f GiB\n", name, o.IterTime, float64(o.Sim.MaxPeakMem())/(1<<30))
	}

	plan, err := adapipe.PlanAdaPipe(m, cluster, strategy, training)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== AdaPipe plan on Ascend 910 ===")
	fmt.Print(adapipe.Describe(plan))
}
