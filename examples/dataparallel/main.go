// dataparallel demonstrates the full 3D-parallelism story in miniature:
// pipeline-parallel stages inside each replica, synchronous gradient
// all-reduce across data-parallel replicas, and a per-device memory timeline
// exported as CSV from the simulator.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"adapipe"
)

func main() {
	rc := adapipe.TrainRunConfig{
		Net:    adapipe.TrainConfig{Layers: 2, Dim: 32, Heads: 4, FFN: 64, Vocab: 32, Seq: 24, Seed: 17},
		Bounds: []int{0, 3, 6}, // 2 pipeline stages
		Steps:  20, MicroBatches: 8, LR: 3e-3, DataSeed: 17,
	}
	single, err := adapipe.Train(rc)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := adapipe.TrainDataParallel(2, rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step   DP=1 loss   DP=2 loss")
	for i := 0; i < len(single.Losses); i += 5 {
		fmt.Printf("%4d   %9.5f   %9.5f\n", i, single.Losses[i], dp.Losses[i])
	}
	fmt.Println("\n(the same global batch split over 2 replicas reproduces the DP=1 losses)")

	// Memory-over-time profile of a GPT-3 iteration, CSV for plotting.
	plan, err := adapipe.PlanContext(context.Background(), adapipe.PlanRequest{
		Model: "gpt3", Cluster: "a",
		TP: 8, PP: 8, DP: 1,
		GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := adapipe.SimulateWithOptions(plan, adapipe.Sched1F1B, adapipe.SimOptions{Memory: true})
	if err != nil {
		log.Fatal(err)
	}
	const out = "memory_timeline.csv"
	if err := os.WriteFile(out, []byte(adapipe.MemoryCSV(res)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d devices, peak %.1f GiB)\n", out, len(res.MemTimeline), float64(res.MaxPeakMem())/(1<<30))
}
