// chaos demonstrates the fault-tolerance layer end to end: it plans a tiny
// model, trains it on the live 1F1B engine while a deterministic fault
// injector attacks it (a persistent straggler stage, a transient panic, a
// NaN corruption), survives everything through the supervisor's
// retry-from-snapshot and non-finite guard, detects the straggler from
// measured traces, replans the partition under the degraded cost model, and
// adopts the new plan mid-run via a checkpoint-based rebind — the full
// inject → survive → replan loop.
//
// The process exits non-zero unless the run survives, exactly one replan is
// adopted, and the adopted plan's simulated iteration beats the repriced
// incumbent's, so `make chaos` doubles as an acceptance gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"adapipe"
)

const (
	layers    = 4
	stages    = 2
	micros    = 8
	seq       = 48
	lr        = 1e-3
	calibrate = 3 // fault-free steps used to profile per-stage micro-times
	injected  = 8 // steps under attack
)

func main() {
	seed := flag.Uint64("seed", 1, "fault-injection seed")
	flag.Parse()

	m := adapipe.Model{
		Name: "chaos-tiny", DecoderLayers: layers, Hidden: 64, Heads: 4,
		KVHeads: 4, FFNHidden: 128, Vocab: 64, BytesPerValue: 8,
	}
	net := adapipe.TrainConfig{
		Layers: layers, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: seq, Seed: 7,
	}
	strat := adapipe.Strategy{TP: 1, PP: stages, DP: 1}
	tc := adapipe.TrainingConfig{GlobalBatch: micros, MicroBatch: 1, SeqLen: seq}

	capacity, err := toyCapacity(m, strat, tc, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := adapipe.NewPlanner(m, toyCluster(stages, capacity), strat, tc, toyOptions())
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adapipe.Describe(plan))

	bounds, saves := adapipe.TrainSpecFromPlan(plan, m)
	pipe, err := adapipe.NewTrainPipeline(net, bounds, saves, lr)
	if err != nil {
		log.Fatal(err)
	}
	pipe.Recorder = adapipe.NewTrainRecorder()
	pipe.Watchdog = 30 * time.Second
	sup, err := adapipe.NewTrainSupervisor(pipe, adapipe.TrainRecovery{
		MaxRetries: 3, Backoff: time.Millisecond, GuardNonFinite: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	corpus := adapipe.NewTrainCorpus(net.Vocab, 1<<14, 7)
	rng := adapipe.NewRNG(7)
	var losses []float64
	step := func(label string) *adapipe.TrainTrace {
		loss, err := sup.Step(corpus.Batches(micros, seq, rng))
		if err != nil {
			log.Fatalf("chaos: %s step failed beyond recovery: %v", label, err)
		}
		losses = append(losses, loss)
		return sup.Pipe.Recorder.Trace()
	}

	// Phase 1 — calibrate: profile the healthy engine's per-stage
	// micro-step times; they become the straggler detector's baseline.
	predicted := make([]float64, stages)
	for i := 0; i < calibrate; i++ {
		tr := step("calibration")
		for s, v := range tr.Result().MicroStep {
			predicted[s] += v / calibrate
		}
	}
	detector, err := adapipe.NewStragglerDetector(predicted, 1.5, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2 — inject: stage 0 becomes a persistent straggler (every op
	// delayed), one transient panic kills an iteration, one corruption
	// poisons an activation. Attempts count Accumulate calls, so the
	// targeted faults land inside the injected phase and never re-fire on
	// the retry.
	inj, err := adapipe.NewFaultInjector(*seed,
		adapipe.FaultOn(adapipe.FaultStraggler).AtStage(0).WithDelay(2*time.Millisecond),
		adapipe.FaultOn(adapipe.FaultPanic).AtStage(1).AtAttempt(calibrate+1),
		adapipe.FaultOn(adapipe.FaultCorrupt).AtStage(0).AtAttempt(calibrate+3).OnPhase(adapipe.FaultPhaseForward),
	)
	if err != nil {
		log.Fatal(err)
	}
	sup.Pipe.Fault = inj

	var adopted *adapipe.Replan
	for i := 0; i < injected; i++ {
		tr := step("injected")
		if adopted != nil {
			continue // one-shot: the detector's predictions died with the old partition
		}
		straggler, ok := detector.Observe(tr)
		if !ok {
			continue
		}
		fmt.Printf("\nstep %d: stage %d measured %.2fx slower than planned — replanning\n",
			len(losses)-1, straggler.Stage, straggler.Slowdown)
		r, err := planner.ReplanWithScale(plan, straggler.Scales(stages))
		if err != nil {
			log.Fatal(err)
		}
		if !r.Adopted {
			log.Fatalf("chaos: replan not adopted (old sim %.4fs, new sim %.4fs)",
				r.OldSim.IterTime, r.NewSim.IterTime)
		}
		fmt.Printf("replan adopted: simulated %.4fs -> %.4fs (%.2fx)\n",
			r.OldSim.IterTime, r.NewSim.IterTime, r.Speedup())
		fmt.Print(adapipe.Describe(r.New))
		nb, ns := adapipe.TrainSpecFromPlan(r.New, m)
		next, err := adapipe.NewTrainPipeline(net, nb, ns, lr)
		if err != nil {
			log.Fatal(err)
		}
		if err := sup.Rebind(next); err != nil {
			log.Fatal(err)
		}
		sup.Stats.Replans++
		adopted = r
	}

	counters := sup.Counters()
	fmt.Printf("\nlosses: first %.4f last %.4f over %d steps\n", losses[0], losses[len(losses)-1], len(losses))
	fmt.Printf("fault counters: %+v\n\n", counters)
	fmt.Print(adapipe.RenderProm(adapipe.FaultMetrics("adapipe_fault", counters)))

	// Acceptance: survived, healed, exactly one adopted replan that the
	// simulator says is faster.
	if adopted == nil {
		log.Fatal("chaos: straggler was never detected; no replan happened")
	}
	if counters.Replans != 1 {
		log.Fatalf("chaos: %d replans, want exactly 1", counters.Replans)
	}
	if counters.Panics == 0 || counters.Corruptions == 0 || counters.Stragglers == 0 {
		log.Fatalf("chaos: injection incomplete: %+v", counters)
	}
	if counters.Retries == 0 {
		log.Fatalf("chaos: nothing was retried: %+v", counters)
	}
	var nonFinite int64
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			nonFinite++
		}
	}
	if nonFinite != counters.SkippedSteps {
		log.Fatalf("chaos: %d non-finite losses vs %d skipped steps", nonFinite, counters.SkippedSteps)
	}
	if len(losses) != calibrate+injected {
		log.Fatalf("chaos: %d losses, want %d", len(losses), calibrate+injected)
	}
	fmt.Println("\nchaos: survived all injected faults; one replan adopted")
}

// toyCluster builds a single-node cluster of small synthetic accelerators;
// the planner needs a hardware model even when the executor is the pure-Go
// engine.
func toyCluster(devices int, capacity int64) adapipe.Cluster {
	return adapipe.Cluster{
		Name: "toy",
		Device: adapipe.Device{
			Name:                "toy-accelerator",
			PeakFLOPS:           10e12,
			MemBandwidth:        500e9,
			MemCapacity:         capacity,
			GEMMEfficiency:      0.5,
			AttnEfficiency:      0.4,
			BandwidthEfficiency: 0.8,
		},
		DevicesPerNode:     devices,
		Nodes:              1,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 10e9,
		LinkLatency:        2e-6,
	}
}

// toyOptions scales the planner to megabyte-size models: the datacenter
// framework overhead and reserve would swamp a toy.
func toyOptions() adapipe.Options {
	opts := adapipe.DefaultOptions()
	opts.Memory.OverheadBytes = 16 << 20
	opts.MemoryReserve = 0.05
	opts.Quantum = 4096
	return opts
}

// toyCapacity probes the no-recomputation memory footprint and returns a
// device capacity where frac of the activation footprint fits.
func toyCapacity(m adapipe.Model, strat adapipe.Strategy, tc adapipe.TrainingConfig, frac float64) (int64, error) {
	opts := toyOptions()
	opts.Recompute = adapipe.RecomputeNone
	opts.Partition = adapipe.PartitionEven
	opts.IgnoreMemoryLimit = true
	probe, err := adapipe.NewPlanner(m, toyCluster(strat.PP, 1<<40), strat, tc, opts)
	if err != nil {
		return 0, err
	}
	plan, err := probe.Plan()
	if err != nil {
		return 0, err
	}
	var capacity int64
	for _, st := range plan.Stages {
		c := st.Mem.Static() + int64(frac*float64(st.Mem.Activations()))
		if c > capacity {
			capacity = c
		}
	}
	// Inflate so the intended headroom survives the adaptive reserve.
	return int64(float64(capacity) / (1 - toyOptions().MemoryReserve) * 1.02), nil
}
