// chaos demonstrates the fault-tolerance layer end to end in two phases.
//
// Phase A (transient faults): it plans a tiny model, trains it on the live
// 1F1B engine while a deterministic fault injector attacks it (a persistent
// straggler stage, a transient panic, a NaN corruption), survives everything
// through the supervisor's retry-from-snapshot and non-finite guard, detects
// the straggler from measured traces, replans the partition under the
// degraded cost model, and adopts the new plan mid-run via a checkpoint-based
// rebind — the full inject → survive → replan loop.
//
// Phase B (permanent loss): a separate 3-stage run loses one stage's node for
// good mid-run. The membership model convicts the node after repeated
// failures, the supervisor restores its snapshot, the planner replans the
// surviving 2-node cluster shape (ReplanWithShape), and training state is
// migrated onto the new 2-stage pipeline exactly — the loss curve stays
// bit-identical to a fault-free run.
//
// The process exits non-zero unless both phases survive with exactly one
// adopted replan each and (for phase B) a bit-exact loss curve, so
// `make chaos` doubles as an acceptance gate. -metrics writes the merged
// fault counters of both phases as Prometheus text.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"adapipe"
)

const (
	layers    = 4
	stages    = 2
	micros    = 8
	seq       = 48
	lr        = 1e-3
	calibrate = 3 // fault-free steps used to profile per-stage micro-times
	injected  = 8 // steps under attack
)

func main() {
	seed := flag.Uint64("seed", 1, "fault-injection seed")
	metricsPath := flag.String("metrics", "", "write the merged fault counters of both phases as Prometheus text to this file")
	flag.Parse()

	m := adapipe.Model{
		Name: "chaos-tiny", DecoderLayers: layers, Hidden: 64, Heads: 4,
		KVHeads: 4, FFNHidden: 128, Vocab: 64, BytesPerValue: 8,
	}
	net := adapipe.TrainConfig{
		Layers: layers, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: seq, Seed: 7,
	}
	strat := adapipe.Strategy{TP: 1, PP: stages, DP: 1}
	tc := adapipe.TrainingConfig{GlobalBatch: micros, MicroBatch: 1, SeqLen: seq}

	capacity, err := toyCapacity(m, strat, tc, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	//adapipevet:ignore depapi synthetic toy cluster with tuned capacity is not expressible in the PlanRequest schema
	planner, err := adapipe.NewPlanner(m, toyCluster(stages, capacity), strat, tc, toyOptions())
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adapipe.Describe(plan))

	bounds, saves := adapipe.TrainSpecFromPlan(plan, m)
	pipe, err := adapipe.NewTrainPipeline(net, bounds, saves, lr)
	if err != nil {
		log.Fatal(err)
	}
	pipe.Recorder = adapipe.NewTrainRecorder()
	pipe.Watchdog = 30 * time.Second
	sup, err := adapipe.NewTrainSupervisor(pipe, adapipe.TrainRecovery{
		MaxRetries: 3, Backoff: time.Millisecond, GuardNonFinite: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	corpus := adapipe.NewTrainCorpus(net.Vocab, 1<<14, 7)
	rng := adapipe.NewRNG(7)
	var losses []float64
	step := func(label string) *adapipe.TrainTrace {
		loss, err := sup.Step(corpus.Batches(micros, seq, rng))
		if err != nil {
			log.Fatalf("chaos: %s step failed beyond recovery: %v", label, err)
		}
		losses = append(losses, loss)
		return sup.Pipe.Recorder.Trace()
	}

	// Phase 1 — calibrate: profile the healthy engine's per-stage
	// micro-step times; they become the straggler detector's baseline.
	predicted := make([]float64, stages)
	for i := 0; i < calibrate; i++ {
		tr := step("calibration")
		for s, v := range tr.Result().MicroStep {
			predicted[s] += v / calibrate
		}
	}
	detector, err := adapipe.NewStragglerDetector(predicted, 1.5, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2 — inject: stage 0 becomes a persistent straggler (every op
	// delayed), one transient panic kills an iteration, one corruption
	// poisons an activation. Attempts count Accumulate calls, so the
	// targeted faults land inside the injected phase and never re-fire on
	// the retry.
	inj, err := adapipe.NewFaultInjector(*seed,
		adapipe.FaultOn(adapipe.FaultStraggler).AtStage(0).WithDelay(2*time.Millisecond),
		adapipe.FaultOn(adapipe.FaultPanic).AtStage(1).AtAttempt(calibrate+1),
		adapipe.FaultOn(adapipe.FaultCorrupt).AtStage(0).AtAttempt(calibrate+3).OnPhase(adapipe.FaultPhaseForward),
	)
	if err != nil {
		log.Fatal(err)
	}
	sup.Pipe.Fault = inj

	var adopted *adapipe.Replan
	for i := 0; i < injected; i++ {
		tr := step("injected")
		if adopted != nil {
			continue // one-shot: the detector's predictions died with the old partition
		}
		straggler, ok := detector.Observe(tr)
		if !ok {
			continue
		}
		fmt.Printf("\nstep %d: stage %d measured %.2fx slower than planned — replanning\n",
			len(losses)-1, straggler.Stage, straggler.Slowdown)
		r, err := planner.ReplanWithScale(plan, straggler.Scales(stages))
		if err != nil {
			log.Fatal(err)
		}
		if !r.Adopted {
			log.Fatalf("chaos: replan not adopted (old sim %.4fs, new sim %.4fs)",
				r.OldSim.IterTime, r.NewSim.IterTime)
		}
		fmt.Printf("replan adopted: simulated %.4fs -> %.4fs (%.2fx)\n",
			r.OldSim.IterTime, r.NewSim.IterTime, r.Speedup())
		fmt.Print(adapipe.Describe(r.New))
		nb, ns := adapipe.TrainSpecFromPlan(r.New, m)
		next, err := adapipe.NewTrainPipeline(net, nb, ns, lr)
		if err != nil {
			log.Fatal(err)
		}
		if err := sup.Rebind(next); err != nil {
			log.Fatal(err)
		}
		sup.Stats.Replans++
		adopted = r
	}

	counters := sup.Counters()
	fmt.Printf("\nlosses: first %.4f last %.4f over %d steps\n", losses[0], losses[len(losses)-1], len(losses))
	fmt.Printf("fault counters: %+v\n\n", counters)
	fmt.Print(adapipe.RenderProm(adapipe.FaultMetrics("adapipe_fault", counters)))

	// Acceptance: survived, healed, exactly one adopted replan that the
	// simulator says is faster.
	if adopted == nil {
		log.Fatal("chaos: straggler was never detected; no replan happened")
	}
	if counters.Replans != 1 {
		log.Fatalf("chaos: %d replans, want exactly 1", counters.Replans)
	}
	if counters.Panics == 0 || counters.Corruptions == 0 || counters.Stragglers == 0 {
		log.Fatalf("chaos: injection incomplete: %+v", counters)
	}
	if counters.Retries == 0 {
		log.Fatalf("chaos: nothing was retried: %+v", counters)
	}
	var nonFinite int64
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			nonFinite++
		}
	}
	if nonFinite != counters.SkippedSteps {
		log.Fatalf("chaos: %d non-finite losses vs %d skipped steps", nonFinite, counters.SkippedSteps)
	}
	if len(losses) != calibrate+injected {
		log.Fatalf("chaos: %d losses, want %d", len(losses), calibrate+injected)
	}
	fmt.Println("\nchaos: survived all injected faults; one replan adopted")

	elastic := elasticPhase(m, net)
	total := counters
	total.Add(elastic)
	if *metricsPath != "" {
		text := adapipe.RenderProm(adapipe.FaultMetrics("adapipe_fault", total))
		if err := os.WriteFile(*metricsPath, []byte(text), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote merged fault metrics to %s\n", *metricsPath)
	}
}

// elasticPhase is phase B: permanent node loss and exact elastic recovery.
// A 3-stage pipeline (one toy node per stage) loses stage 1's node for good
// at attempt 3. The supervisor's membership model convicts it after two
// consecutive failures, the planner replans the surviving 2-node shape, and
// training resumes on the rebuilt 2-stage pipeline with a bit-identical loss
// curve. Returns the phase's fault counters; any violation exits non-zero.
func elasticPhase(m adapipe.Model, net adapipe.TrainConfig) adapipe.FaultCounters {
	const (
		estages = 3
		esteps  = 6
	)
	fmt.Println("\n--- elastic phase: permanent node loss ---")
	strat := adapipe.Strategy{TP: 1, PP: estages, DP: 1}
	tc := adapipe.TrainingConfig{GlobalBatch: micros, MicroBatch: 1, SeqLen: seq}
	// Size the device for the post-loss worst case: after the shrink, two
	// stages must hold what three held.
	capacity, err := toyCapacity(m, adapipe.Strategy{TP: 1, PP: estages - 1, DP: 1}, tc, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	cluster := elasticCluster(estages, capacity)
	//adapipevet:ignore depapi elastic toy cluster shapes are not expressible in the PlanRequest schema
	planner, err := adapipe.NewPlanner(m, cluster, strat, tc, toyOptions())
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	bounds, saves := adapipe.TrainSpecFromPlan(plan, m)

	runLosses := func(sup *adapipe.TrainSupervisor) []float64 {
		corpus := adapipe.NewTrainCorpus(net.Vocab, 1<<14, 13)
		rng := adapipe.NewRNG(13)
		out := make([]float64, 0, esteps)
		for i := 0; i < esteps; i++ {
			l, err := sup.Step(corpus.Batches(micros, seq, rng))
			if err != nil {
				log.Fatalf("chaos: elastic step %d failed beyond recovery: %v", i, err)
			}
			out = append(out, l)
		}
		return out
	}

	// Fault-free reference: losses are partition-invariant, so this is the
	// bit-exact target on both sides of the resize.
	cleanPipe, err := adapipe.NewTrainPipeline(net, bounds, saves, lr)
	if err != nil {
		log.Fatal(err)
	}
	cleanSup, err := adapipe.NewTrainSupervisor(cleanPipe, adapipe.TrainRecovery{})
	if err != nil {
		log.Fatal(err)
	}
	clean := runLosses(cleanSup)

	pipe, err := adapipe.NewTrainPipeline(net, bounds, saves, lr)
	if err != nil {
		log.Fatal(err)
	}
	pipe.Watchdog = 30 * time.Second
	pipe.Fault, err = adapipe.NewFaultInjector(1,
		adapipe.FaultOn(adapipe.FaultNodeLoss).AtStage(1).AtAttempt(3))
	if err != nil {
		log.Fatal(err)
	}
	sup, err := adapipe.NewTrainSupervisor(pipe, adapipe.TrainRecovery{MaxRetries: 1, Backoff: time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	health, err := adapipe.NewMembership(estages, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	sup.Elastic = adapipe.TrainElastic{
		Health: health,
		Rebuild: func(downStage int) (*adapipe.TrainPipeline, error) {
			shrunk, err := cluster.Resize(estages - 1)
			if err != nil {
				return nil, err
			}
			r, err := planner.ReplanWithShape(shrunk)
			if err != nil {
				return nil, err
			}
			fmt.Printf("stage %d lost its node: replanned %d-node cluster at PP=%d "+
				"(simulated %.4fs/iter, %d iso-cache entries reused)\n",
				downStage, shrunk.Nodes, r.Strategy.PP, r.Sim.IterTime, r.ReusedCostEntries)
			fmt.Print(adapipe.Describe(r.Plan))
			if r.Strategy.PP != estages-1 {
				return nil, fmt.Errorf("chaos: replanned PP=%d on a %d-node cluster, want %d",
					r.Strategy.PP, shrunk.Nodes, estages-1)
			}
			nb, ns := adapipe.TrainSpecFromPlan(r.Plan, m)
			rebuilt := net
			rebuilt.Seed = 77 // the state handoff alone must determine the result
			next, err := adapipe.NewTrainPipeline(rebuilt, nb, ns, lr)
			if err != nil {
				return nil, err
			}
			next.Fault, err = adapipe.NewFaultInjector(1) // the old rules died with the node
			return next, err
		},
	}
	got := runLosses(sup)

	for i := range clean {
		if got[i] != clean[i] {
			log.Fatalf("chaos: elastic step %d loss %v != fault-free loss %v; recovery was not exact",
				i, got[i], clean[i])
		}
	}
	ec := sup.Counters()
	fmt.Printf("elastic counters: %+v\n", ec)
	if ec.Resizes != 1 || ec.LossesDetected != 1 {
		log.Fatalf("chaos: %d resizes, %d losses detected; want exactly 1 of each", ec.Resizes, ec.LossesDetected)
	}
	if ec.NodeLosses != 2 {
		log.Fatalf("chaos: %d node-loss faults, want 2 (original + the retry that convicts)", ec.NodeLosses)
	}
	if health.Stages() != estages-1 || health.LostNodes() != 1 {
		log.Fatalf("chaos: health model at %d stages with %d lost nodes", health.Stages(), health.LostNodes())
	}
	fmt.Printf("chaos: node loss survived; %d steps bit-identical across one elastic resize (%d -> %d stages)\n",
		esteps, estages, estages-1)
	return ec
}

// elasticCluster is a toy cluster with one small accelerator per node, so a
// node loss maps 1:1 onto a pipeline-stage loss.
func elasticCluster(nodes int, capacity int64) adapipe.Cluster {
	c := toyCluster(1, capacity)
	c.Name = "elastic-toy"
	c.Nodes = nodes
	return c
}

// toyCluster builds a single-node cluster of small synthetic accelerators;
// the planner needs a hardware model even when the executor is the pure-Go
// engine.
func toyCluster(devices int, capacity int64) adapipe.Cluster {
	return adapipe.Cluster{
		Name: "toy",
		Device: adapipe.Device{
			Name:                "toy-accelerator",
			PeakFLOPS:           10e12,
			MemBandwidth:        500e9,
			MemCapacity:         capacity,
			GEMMEfficiency:      0.5,
			AttnEfficiency:      0.4,
			BandwidthEfficiency: 0.8,
		},
		DevicesPerNode:     devices,
		Nodes:              1,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 10e9,
		LinkLatency:        2e-6,
	}
}

// toyOptions scales the planner to megabyte-size models: the datacenter
// framework overhead and reserve would swamp a toy.
func toyOptions() adapipe.Options {
	opts := adapipe.DefaultOptions()
	opts.Memory.OverheadBytes = 16 << 20
	opts.MemoryReserve = 0.05
	opts.Quantum = 4096
	return opts
}

// toyCapacity probes the no-recomputation memory footprint and returns a
// device capacity where frac of the activation footprint fits.
func toyCapacity(m adapipe.Model, strat adapipe.Strategy, tc adapipe.TrainingConfig, frac float64) (int64, error) {
	opts := toyOptions()
	opts.Recompute = adapipe.RecomputeNone
	opts.Partition = adapipe.PartitionEven
	opts.IgnoreMemoryLimit = true
	//adapipevet:ignore depapi memory probe needs an unbounded toy cluster the PlanRequest schema cannot express
	probe, err := adapipe.NewPlanner(m, toyCluster(strat.PP, 1<<40), strat, tc, opts)
	if err != nil {
		return 0, err
	}
	plan, err := probe.Plan()
	if err != nil {
		return 0, err
	}
	var capacity int64
	for _, st := range plan.Stages {
		c := st.Mem.Static() + int64(frac*float64(st.Mem.Activations()))
		if c > capacity {
			capacity = c
		}
	}
	// Inflate so the intended headroom survives the adaptive reserve.
	return int64(float64(capacity) / (1 - toyOptions().MemoryReserve) * 1.02), nil
}
