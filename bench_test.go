package adapipe_test

import (
	"runtime"
	"testing"

	"adapipe"
	"adapipe/internal/core"
	"adapipe/internal/experiments"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
	"adapipe/internal/partition"
	"adapipe/internal/recompute"
)

// One benchmark per table and figure of the paper's evaluation: each run
// regenerates the corresponding rows/series on the simulated substrate and
// reports the wall time of doing so. Run `go test -bench=. -benchmem` and
// compare the printed shapes against EXPERIMENTS.md.

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	cfg := experiments.DefaultFigure10Config()
	cfg.Steps = 50 // a full 200-step curve per benchmark iteration is excessive
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Component benchmarks: the costs behind the search itself. ----

func gptPlanner(b *testing.B, opts core.Options) *core.Planner {
	b.Helper()
	pl, err := core.NewPlanner(model.GPT3_175B(), hardware.ClusterA(),
		parallel.Strategy{TP: 8, PP: 8, DP: 1},
		parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}, opts)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

// BenchmarkSearchAdaPipe times the full two-level DP for GPT-3 (the paper
// reports "only seconds" for the whole search, §5.3).
func BenchmarkSearchAdaPipe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, core.DefaultOptions())
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSearch is the serial baseline of the parallel-search pair:
// the full GPT-3 two-level DP at Workers=1. Compare against
// BenchmarkPlanSearchParallel (cmd/planbench runs the same pair and writes
// BENCH_planner.json).
func BenchmarkPlanSearch(b *testing.B) {
	b.ReportAllocs()
	opts := core.DefaultOptions()
	opts.Workers = 1
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSearchParallel is the same search with the knapsack prefill
// and partition DP fanned across GOMAXPROCS workers. The plan is
// byte-identical to the serial one (TestParallelPlanMatchesSerial); only the
// wall time may differ.
func BenchmarkPlanSearchParallel(b *testing.B) {
	b.ReportAllocs()
	opts := core.DefaultOptions()
	opts.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplanWithScale times one cold straggler-driven replanning round —
// reprice the incumbent, re-search under scaled costs from scratch, simulate
// both — with the planner and incumbent plan built outside the timer.
// ResetIncremental inside the loop keeps the row honest now that warm
// planners replan incrementally by default; BenchmarkReplanIncremental is
// the warm counterpart.
func BenchmarkReplanWithScale(b *testing.B) {
	b.ReportAllocs()
	opts := core.DefaultOptions()
	opts.Workers = runtime.GOMAXPROCS(0)
	pl := gptPlanner(b, opts)
	plan, err := pl.Plan()
	if err != nil {
		b.Fatal(err)
	}
	scale := []float64{1, 1, 1.25, 1, 1, 1, 1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.ResetIncremental()
		if _, err := pl.ReplanWithScale(plan, scale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplanIncremental times the warm-started replanning fast path:
// the planner keeps its partition-DP memo and iso-cache from the previous
// search, so each round only re-solves the DP levels whose stage scale
// changed. The two scale vectors alternate a different value at stage 2 so
// every iteration really invalidates and recomputes levels 0..2 rather than
// reassembling a stale=-1 no-op.
func BenchmarkReplanIncremental(b *testing.B) {
	b.ReportAllocs()
	opts := core.DefaultOptions()
	opts.Workers = runtime.GOMAXPROCS(0)
	pl := gptPlanner(b, opts)
	plan, err := pl.Plan()
	if err != nil {
		b.Fatal(err)
	}
	scales := [2][]float64{
		{1, 1, 1.25, 1, 1, 1, 1, 1},
		{1, 1, 1.35, 1, 1, 1, 1, 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := pl.ReplanWithScale(plan, scales[i%2])
		if err != nil {
			b.Fatal(err)
		}
		plan = r.New
	}
}

// BenchmarkAblationIsomorphism measures the search without the §5.3
// isomorphic-range cache: every (s,i,j) range solves its own knapsack.
func BenchmarkAblationIsomorphism(b *testing.B) {
	opts := core.DefaultOptions()
	opts.DisableIsomorphism = true
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGCD measures the search without the §5.3 GCD capacity
// reduction (the knapsack runs at raw quantum granularity).
func BenchmarkAblationGCD(b *testing.B) {
	opts := core.DefaultOptions()
	opts.DisableGCD = true
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFineQuantum measures the search at a 16x finer knapsack
// quantum (DP accuracy/speed trade-off called out in DESIGN.md).
func BenchmarkAblationFineQuantum(b *testing.B) {
	opts := core.DefaultOptions()
	opts.MaxDPStates = 65536
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnapsack times one stage-level recomputation DP at realistic
// sizes (a 24-layer GPT-3 stage).
func BenchmarkKnapsack(b *testing.B) {
	groups := []recompute.Group{
		{Key: "Attention/LayerNorm", FwdTime: 1e-4, Bytes: 50 << 20, Count: 12},
		{Key: "Attention/QProj", FwdTime: 3e-3, Bytes: 50 << 20, Count: 12},
		{Key: "Attention/KProj", FwdTime: 3e-3, Bytes: 50 << 20, Count: 12},
		{Key: "Attention/VProj", FwdTime: 3e-3, Bytes: 50 << 20, Count: 12},
		{Key: "Attention/Core", FwdTime: 9e-3, Bytes: 51 << 20, Count: 12},
		{Key: "Attention/Out", FwdTime: 3e-3, Bytes: 50 << 20, Count: 12, AlwaysSaved: true},
		{Key: "FFN/LayerNorm", FwdTime: 1e-4, Bytes: 50 << 20, Count: 12},
		{Key: "FFN/Up", FwdTime: 1.2e-2, Bytes: 200 << 20, Count: 12},
		{Key: "FFN/Act", FwdTime: 2e-4, Bytes: 200 << 20, Count: 12},
		{Key: "FFN/Down", FwdTime: 1.2e-2, Bytes: 50 << 20, Count: 12, AlwaysSaved: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := recompute.Optimize(groups, 8<<30, recompute.Options{Quantum: 1 << 20})
		if !sol.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkPartitionDP times Algorithm 1 alone over the GPT-3 layer
// sequence with a synthetic cost function (no knapsack inside).
func BenchmarkPartitionDP(b *testing.B) {
	const L, p, n = 194, 8, 32
	cost := func(s, i, j int) (float64, float64, bool) {
		layers := float64(j - i + 1)
		return layers * 0.03, layers * 0.08, true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Solve(L, p, n, cost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate1F1B times one simulated GPT-3 iteration.
func BenchmarkSimulate1F1B(b *testing.B) {
	plan, err := adapipe.PlanAdaPipe(adapipe.GPT3(), adapipe.ClusterA(),
		adapipe.Strategy{TP: 8, PP: 8, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapipe.Simulate(plan, adapipe.Sched1F1B, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateChimera times the greedy bidirectional schedule.
func BenchmarkSimulateChimera(b *testing.B) {
	plan, err := adapipe.PlanAdaPipe(adapipe.GPT3(), adapipe.ClusterA(),
		adapipe.Strategy{TP: 8, PP: 8, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapipe.Simulate(plan, adapipe.SchedChimera, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStep times one real pipelined training iteration of the
// micro-transformer (execution-engine substrate).
func BenchmarkTrainStep(b *testing.B) {
	b.ReportAllocs()
	res, err := adapipe.Train(adapipe.TrainRunConfig{
		Net:    adapipe.TrainConfig{Layers: 4, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: 48, Seed: 1},
		Bounds: []int{0, 5, 10},
		Steps:  1, MicroBatches: 8, LR: 1e-3, DataSeed: 1,
	})
	if err != nil || len(res.Losses) != 1 {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapipe.Train(adapipe.TrainRunConfig{
			Net:    adapipe.TrainConfig{Layers: 4, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: 48, Seed: 1},
			Bounds: []int{0, 5, 10},
			Steps:  1, MicroBatches: 8, LR: 1e-3, DataSeed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStepRecorded is BenchmarkTrainStep with the op recorder
// attached. Compare against BenchmarkTrainStep (same -benchmem run) to see
// the recording overhead: the nil-recorder path must not allocate or read
// clocks beyond the baseline.
func BenchmarkTrainStepRecorded(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := adapipe.Train(adapipe.TrainRunConfig{
			Net:    adapipe.TrainConfig{Layers: 4, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: 48, Seed: 1},
			Bounds: []int{0, 5, 10},
			Steps:  1, MicroBatches: 8, LR: 1e-3, DataSeed: 1,
			Record: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace == nil {
			b.Fatal("no trace recorded")
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation study.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterleaved regenerates the supplementary interleaved-1F1B study.
func BenchmarkInterleaved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Interleaved(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExactPartition times the Pareto-frontier partition DP on
// the full GPT-3 search (vs BenchmarkSearchAdaPipe's Algorithm 1).
func BenchmarkAblationExactPartition(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Partition = core.PartitionExact
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLayerGranularity times the whole-layer (vPipe-style)
// recomputation search.
func BenchmarkAblationLayerGranularity(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Recompute = core.RecomputeLayerLevel
	opts.Partition = core.PartitionEven
	for i := 0; i < b.N; i++ {
		pl := gptPlanner(b, opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequenceSweep regenerates the memory-pressure trend study.
func BenchmarkSequenceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SequenceSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelAccuracy regenerates the cost-model accuracy study.
func BenchmarkModelAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ModelAccuracy(); err != nil {
			b.Fatal(err)
		}
	}
}
